// Package pubsub implements the topic-based publish/subscribe substrate of
// the unified cache. Every table in the cache corresponds to a topic with
// the same name; each tuple insertion is published as an event on that
// topic and delivered to all subscribed automata in strict
// time-of-insertion order (§3, §5 of the paper).
//
// Delivery never blocks the publisher: each subscriber owns an unbounded
// FIFO inbox (see Inbox). This is what makes publish() from inside an
// automaton re-entrant — an automaton may publish into a topic it is itself
// subscribed to without deadlock.
package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"unicache/internal/types"
)

// Subscriber consumes events. Deliver and DeliverBatch must not block
// (Inbox satisfies this); both are called with the broker's topic lock held
// so that the global event interleaving is identical for every subscriber.
// DeliverBatch receives a run of events in commit order and must not retain
// or mutate the slice itself (the same slice is handed to every
// subscriber); retaining the *Event pointers is fine.
type Subscriber interface {
	Deliver(ev *types.Event)
	DeliverBatch(evs []*types.Event)
}

// Broker routes published events to topic subscribers.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
}

type topic struct {
	name string
	mu   sync.Mutex
	subs map[int64]Subscriber
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[string]*topic)}
}

// CreateTopic registers a topic name. Creating an existing topic is an
// error (mirrors create table semantics).
func (b *Broker) CreateTopic(name string) error {
	if name == "" {
		return fmt.Errorf("topic needs a name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("topic %s already exists", name)
	}
	b.topics[name] = &topic{name: name, subs: make(map[int64]Subscriber)}
	return nil
}

// HasTopic reports whether the topic exists.
func (b *Broker) HasTopic(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.topics[name]
	return ok
}

// Topics returns the topic names in lexical order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Subscribe attaches sub to the named topic under the given subscriber id.
// One id may subscribe to many topics; Unsubscribe(id) detaches it from all
// of them.
func (b *Broker) Subscribe(id int64, name string, sub Subscriber) error {
	if sub == nil {
		return fmt.Errorf("nil subscriber")
	}
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("no such topic %q", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.subs[id]; dup {
		return fmt.Errorf("subscriber %d already subscribed to %s", id, name)
	}
	t.subs[id] = sub
	return nil
}

// Unsubscribe detaches subscriber id from every topic.
func (b *Broker) Unsubscribe(id int64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, t := range b.topics {
		t.mu.Lock()
		delete(t.subs, id)
		t.mu.Unlock()
	}
}

// Subscribers returns the number of subscribers on a topic.
func (b *Broker) Subscribers(name string) int {
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if !ok {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// Publish delivers ev to every subscriber of ev.Topic. The caller (the
// cache commit path) is responsible for assigning ev.Tuple.Seq before
// publishing; the per-topic lock guarantees all subscribers observe the
// same interleaving.
func (b *Broker) Publish(ev *types.Event) error {
	b.mu.RLock()
	t, ok := b.topics[ev.Topic]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("no such topic %q", ev.Topic)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sub := range t.subs {
		sub.Deliver(ev)
	}
	return nil
}

// PublishBatch delivers a run of events — all on the same topic, already
// carrying their committed sequence numbers — to every subscriber of that
// topic with one topic-lock acquisition and one DeliverBatch call per
// subscriber. This is the fan-out arm of the batch commit pipeline: the
// per-event signalling cost of Publish amortises over the run.
func (b *Broker) PublishBatch(evs []*types.Event) error {
	if len(evs) == 0 {
		return nil
	}
	name := evs[0].Topic
	for _, ev := range evs[1:] {
		if ev.Topic != name {
			return fmt.Errorf("publish batch mixes topics %q and %q", name, ev.Topic)
		}
	}
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("no such topic %q", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sub := range t.subs {
		sub.DeliverBatch(evs)
	}
	return nil
}
