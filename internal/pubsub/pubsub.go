package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"unicache/internal/types"
)

// Subscriber consumes events. Deliver and DeliverBatch are enqueue-only:
// both are called with the topic lock held (so that the topic's event
// interleaving is identical for every subscriber) and must do no more than
// queue the events and signal a consumer — never execute consumer logic.
// An Inbox satisfies this; a bounded Block inbox may park the publisher
// when full, which is deliberate backpressure, not work. They must also
// not call Subscribe, Unsubscribe or anything that takes subscription
// locks — subscription changes from inside delivery can deadlock against
// concurrent control operations; hand such work to the consumer goroutine
// (a Dispatcher) instead. DeliverBatch receives a run of events in commit
// order and must not retain or mutate the slice itself (the same slice is
// handed to every subscriber). Retaining the *Event pointers is fine for
// unpooled events; for pool-managed events (Event.Pooled) the publisher
// takes one reference per subscriber before delivery, and a subscriber that
// keeps an event past the consumer's dispatch completion must Retain it
// (see docs/ARCHITECTURE.md, "Event ownership and pooling").
type Subscriber interface {
	Deliver(ev *types.Event)
	DeliverBatch(evs []*types.Event)
}

// Broker routes published events to topic subscribers.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*Topic

	// subMu guards byID, the id -> subscriptions index. It lets
	// Unsubscribe visit only the topics the id is actually attached to,
	// holding no broker-wide lock while it takes each topic's mutex — so
	// detaching from healthy topics never waits on an unrelated stalled
	// topic and never blocks topic creation. The index records the
	// Subscriber instance so a detach snapshotted before a concurrent
	// re-subscribe of the same id skips the newer subscription instead of
	// wiping it.
	subMu sync.Mutex
	byID  map[int64]map[*Topic]Subscriber
}

// Topic is one named event channel. Publishers that own a *Topic handle
// (the cache's per-topic commit domains) publish through it directly,
// without touching the broker's topic map; the handle stays valid for the
// life of the broker. The topic mutex serialises publications against
// subscription changes, which is what makes every subscriber of the topic
// observe the identical event interleaving.
type Topic struct {
	name string
	mu   sync.Mutex
	subs map[int64]Subscriber
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics: make(map[string]*Topic),
		byID:   make(map[int64]map[*Topic]Subscriber),
	}
}

// CreateTopic registers a topic name. Creating an existing topic is an
// error (mirrors create table semantics).
func (b *Broker) CreateTopic(name string) error {
	if name == "" {
		return fmt.Errorf("topic needs a name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("topic %s already exists", name)
	}
	b.topics[name] = &Topic{name: name, subs: make(map[int64]Subscriber)}
	return nil
}

// Topic returns the publish handle for the named topic. The handle is
// stable: it may be cached by publishers (the cache caches one per commit
// domain) and used concurrently with subscription changes.
func (b *Broker) Topic(name string) (*Topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("no such topic %q", name)
	}
	return t, nil
}

// HasTopic reports whether the topic exists.
func (b *Broker) HasTopic(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.topics[name]
	return ok
}

// Topics returns the topic names in lexical order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Subscribe attaches sub to the named topic under the given subscriber id.
// One id may subscribe to many topics; Unsubscribe(id) detaches it from all
// of them. No lock is held while waiting for another (the topic is updated
// first, then the index under subMu), so subscribing to one stalled topic
// never freezes subscription changes on healthy topics. An Unsubscribe
// racing a Subscribe of the same id resolves via the index: a snapshot
// taken before this subscription was indexed simply does not include it
// (the unsubscribe linearises first), and a snapshotted older subscription
// is removed by Subscriber instance, never touching this one.
func (b *Broker) Subscribe(id int64, name string, sub Subscriber) error {
	if sub == nil {
		return fmt.Errorf("nil subscriber")
	}
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("no such topic %q", name)
	}
	t.mu.Lock()
	if _, dup := t.subs[id]; dup {
		t.mu.Unlock()
		return fmt.Errorf("subscriber %d already subscribed to %s", id, name)
	}
	t.subs[id] = sub
	t.mu.Unlock()
	b.subMu.Lock()
	if b.byID[id] == nil {
		b.byID[id] = make(map[*Topic]Subscriber)
	}
	b.byID[id][t] = sub
	b.subMu.Unlock()
	return nil
}

// Unsubscribe detaches subscriber id from every topic it is attached to.
// The index is snapshotted and cleared under subMu, but the per-topic
// detach runs with no broker-wide lock held and takes only the attached
// topics' locks — so detaching an id neither waits on topics it was not
// subscribed to nor freezes other ids' subscription changes behind a
// stalled topic. Each detach removes the subscription only if the topic
// still holds the snapshotted Subscriber instance, so a Subscribe of the
// same id that lands after the snapshot survives untouched.
func (b *Broker) Unsubscribe(id int64) {
	b.subMu.Lock()
	attached := b.byID[id]
	delete(b.byID, id)
	b.subMu.Unlock()
	for t, sub := range attached {
		t.mu.Lock()
		if t.subs[id] == sub {
			delete(t.subs, id)
		}
		t.mu.Unlock()
	}
}

// Subscribers returns the number of subscribers on a topic.
func (b *Broker) Subscribers(name string) int {
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if !ok {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// Publish delivers ev to every subscriber of this topic. The caller (the
// cache commit path) is responsible for assigning ev.Tuple.Seq before
// publishing; the topic lock guarantees all subscribers observe the same
// interleaving.
func (t *Topic) Publish(ev *types.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sub := range t.subs {
		// One reference per subscriber: the inbox (or its close-time
		// discard) owns it from here. No-op for unpooled events.
		ev.Retain()
		sub.Deliver(ev)
	}
}

// PublishBatch delivers a run of events — all on this topic, already
// carrying their committed sequence numbers — to every subscriber with one
// topic-lock acquisition and one DeliverBatch call per subscriber. This is
// the fan-out arm of the batch commit pipeline: the per-event signalling
// cost of Publish amortises over the run.
func (t *Topic) PublishBatch(evs []*types.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sub := range t.subs {
		// One reference per subscriber per event: the inbox (or its
		// close-time discard) owns them from here. No-op for unpooled
		// events.
		for _, ev := range evs {
			ev.Retain()
		}
		sub.DeliverBatch(evs)
	}
}

// Publish delivers ev to every subscriber of ev.Topic, resolving the topic
// by name. Hot publishers (the cache commit domains) hold a *Topic handle
// and call its Publish directly instead.
func (b *Broker) Publish(ev *types.Event) error {
	t, err := b.Topic(ev.Topic)
	if err != nil {
		return err
	}
	t.Publish(ev)
	return nil
}

// PublishBatch delivers a run of same-topic events by name; see
// Topic.PublishBatch for the handle-based hot path.
func (b *Broker) PublishBatch(evs []*types.Event) error {
	if len(evs) == 0 {
		return nil
	}
	name := evs[0].Topic
	for _, ev := range evs[1:] {
		if ev.Topic != name {
			return fmt.Errorf("publish batch mixes topics %q and %q", name, ev.Topic)
		}
	}
	t, err := b.Topic(name)
	if err != nil {
		return err
	}
	t.PublishBatch(evs)
	return nil
}
