package pubsub

import (
	"sync"
	"testing"
	"time"

	"unicache/internal/types"
)

func batchEvents(n int, seq0 uint64) []*types.Event {
	evs := make([]*types.Event, n)
	for i := range evs {
		evs[i] = &types.Event{Topic: "T", Tuple: &types.Tuple{Seq: seq0 + uint64(i)}}
	}
	return evs
}

// TestBatchDispatcherDeliversRunsInOrder pins the batch drain mode: every
// callback receives a whole run, runs preserve commit order, and a run
// delivered with one DeliverBatch while the consumer is parked arrives as
// one callback invocation.
func TestBatchDispatcherDeliversRunsInOrder(t *testing.T) {
	in := NewInbox()
	var mu sync.Mutex
	var runs []int
	var seqs []uint64
	started := make(chan struct{})
	var once sync.Once
	block := make(chan struct{})
	d := NewBatchDispatcher(in, func(evs []*types.Event) {
		once.Do(func() { close(started); <-block })
		mu.Lock()
		runs = append(runs, len(evs))
		for _, ev := range evs {
			seqs = append(seqs, ev.Tuple.Seq)
		}
		mu.Unlock()
	}, DispatcherConfig{})
	defer d.Stop()

	// First event wakes the consumer; while its callback is parked, a
	// whole batch queues behind it and must drain as one run.
	in.Deliver(batchEvents(1, 1)[0])
	<-started
	in.DeliverBatch(batchEvents(5, 2))
	close(block)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seqs)
		mu.Unlock()
		if n == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d events dispatched", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs out of order: %v", seqs)
		}
	}
	if len(runs) != 2 || runs[0] != 1 || runs[1] != 5 {
		t.Fatalf("runs = %v, want [1 5] (queued batch drained as one run)", runs)
	}
}

func TestBatchDispatcherStopDiscardsQueuedRuns(t *testing.T) {
	in := NewInbox()
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	calls := 0
	d := NewBatchDispatcher(in, func(evs []*types.Event) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(entered)
			<-release
		}
	}, DispatcherConfig{})

	in.Deliver(batchEvents(1, 1)[0])
	<-entered
	in.DeliverBatch(batchEvents(10, 2)) // queued behind the in-flight run
	go func() { time.Sleep(10 * time.Millisecond); close(release) }()
	d.Stop()
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("callback ran %d times after Stop, want 1 (queued run discarded)", calls)
	}
	if d.Busy() {
		t.Fatal("stopped dispatcher must not report Busy")
	}
}

func TestBatchDispatcherMaxRunBound(t *testing.T) {
	in := NewInbox()
	var mu sync.Mutex
	var runs []int
	started := make(chan struct{})
	var once sync.Once
	block := make(chan struct{})
	d := NewBatchDispatcher(in, func(evs []*types.Event) {
		once.Do(func() { close(started); <-block })
		mu.Lock()
		runs = append(runs, len(evs))
		mu.Unlock()
	}, DispatcherConfig{MaxRun: 4})
	defer d.Stop()

	in.Deliver(batchEvents(1, 1)[0])
	<-started
	in.DeliverBatch(batchEvents(10, 2))
	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		total := 0
		if len(runs) > 1 {
			for _, r := range runs[1:] { // skip the wake-up event's run
				total += r
				if r > 4 {
					mu.Unlock()
					t.Fatalf("run of %d exceeds MaxRun 4: %v", r, runs)
				}
			}
		}
		mu.Unlock()
		if total == 10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatched %d of 10", total)
		}
		time.Sleep(time.Millisecond)
	}
}
