package pubsub

import (
	"sync"

	"unicache/internal/types"
)

// Inbox is an unbounded FIFO event queue connecting the cache commit path
// (producer) to one automaton goroutine (consumer). Enqueueing never
// blocks; the consumer blocks in Pop until an event arrives or the inbox is
// closed. It is the Go analogue of the per-automaton PThread mailbox in the
// paper's runtime (§5).
type Inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*types.Event
	head   int
	closed bool
}

var _ Subscriber = (*Inbox)(nil)

// NewInbox returns an empty open inbox.
func NewInbox() *Inbox {
	in := &Inbox{}
	in.cond = sync.NewCond(&in.mu)
	return in
}

// Deliver implements Subscriber: non-blocking FIFO enqueue. Events
// delivered to a closed inbox are dropped.
func (in *Inbox) Deliver(ev *types.Event) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.q = append(in.q, ev)
	in.mu.Unlock()
	in.cond.Signal()
}

// Pop blocks until an event is available and returns it; ok is false once
// the inbox is closed and drained.
func (in *Inbox) Pop() (*types.Event, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.head >= len(in.q) && !in.closed {
		in.cond.Wait()
	}
	if in.head >= len(in.q) {
		return nil, false
	}
	ev := in.q[in.head]
	in.q[in.head] = nil
	in.head++
	if in.head > 256 && in.head*2 >= len(in.q) {
		// Reclaim consumed prefix.
		in.q = append(in.q[:0], in.q[in.head:]...)
		in.head = 0
	}
	return ev, true
}

// TryPop returns the next event without blocking; ok is false if none is
// queued.
func (in *Inbox) TryPop() (*types.Event, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.head >= len(in.q) {
		return nil, false
	}
	ev := in.q[in.head]
	in.q[in.head] = nil
	in.head++
	return ev, true
}

// Len returns the number of queued events.
func (in *Inbox) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.q) - in.head
}

// Close marks the inbox closed and wakes the consumer. Pending events may
// still be drained with Pop; Deliver becomes a no-op.
func (in *Inbox) Close() {
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
	in.cond.Broadcast()
}
