package pubsub

import (
	"sync"

	"unicache/internal/types"
)

// Inbox is an unbounded FIFO event queue connecting the cache commit path
// (producer) to one automaton goroutine (consumer). Enqueueing never
// blocks; the consumer blocks in Pop until an event arrives or the inbox is
// closed. It is the Go analogue of the per-automaton PThread mailbox in the
// paper's runtime (§5).
type Inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*types.Event
	head   int
	closed bool
}

var _ Subscriber = (*Inbox)(nil)

// NewInbox returns an empty open inbox.
func NewInbox() *Inbox {
	in := &Inbox{}
	in.cond = sync.NewCond(&in.mu)
	return in
}

// Deliver implements Subscriber: non-blocking FIFO enqueue. Events
// delivered to a closed inbox are dropped.
func (in *Inbox) Deliver(ev *types.Event) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.q = append(in.q, ev)
	in.mu.Unlock()
	in.cond.Signal()
}

// DeliverBatch implements Subscriber: the whole run is enqueued under one
// lock acquisition and the consumer is signalled once, which is what makes
// the batch commit pipeline's fan-out cost amortise over the batch.
func (in *Inbox) DeliverBatch(evs []*types.Event) {
	if len(evs) == 0 {
		return
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.q = append(in.q, evs...)
	in.mu.Unlock()
	in.cond.Signal()
}

// compactLocked reclaims the consumed prefix of the backing array once it
// dominates the queue. Callers hold in.mu.
func (in *Inbox) compactLocked() {
	if in.head > 256 && in.head*2 >= len(in.q) {
		in.q = append(in.q[:0], in.q[in.head:]...)
		in.head = 0
	}
}

// Pop blocks until an event is available and returns it; ok is false once
// the inbox is closed and drained.
func (in *Inbox) Pop() (*types.Event, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.head >= len(in.q) && !in.closed {
		in.cond.Wait()
	}
	if in.head >= len(in.q) {
		return nil, false
	}
	ev := in.q[in.head]
	in.q[in.head] = nil
	in.head++
	in.compactLocked()
	return ev, true
}

// PopBatch blocks until at least one event is available, then moves a run
// of up to max queued events (max <= 0 means all) into buf — reusing its
// backing array — and returns it. Passing buf transfers ownership of its
// ENTIRE capacity: every slot up to cap(buf) is cleared on entry (so a
// consumer parked here does not pin its previous batch), so never pass a
// subslice whose backing array still holds events in use. ok is false once
// the inbox is closed and drained. One lock acquisition drains the whole
// run, the batch analogue of Pop.
func (in *Inbox) PopBatch(max int, buf []*types.Event) ([]*types.Event, bool) {
	// Release the caller's previous batch before potentially parking in
	// Wait: a reused buffer must not keep the last run's events reachable
	// while the consumer sits idle.
	for i, full := 0, buf[:cap(buf)]; i < len(full); i++ {
		full[i] = nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.head >= len(in.q) && !in.closed {
		in.cond.Wait()
	}
	n := len(in.q) - in.head
	if n == 0 {
		return nil, false
	}
	if max > 0 && n > max {
		n = max
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, in.q[in.head])
		in.q[in.head] = nil
		in.head++
	}
	in.compactLocked()
	return buf, true
}

// TryPop returns the next event without blocking; ok is false if none is
// queued.
func (in *Inbox) TryPop() (*types.Event, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.head >= len(in.q) {
		return nil, false
	}
	ev := in.q[in.head]
	in.q[in.head] = nil
	in.head++
	in.compactLocked()
	return ev, true
}

// Len returns the number of queued events.
func (in *Inbox) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.q) - in.head
}

// Close marks the inbox closed and wakes the consumer. Pending events may
// still be drained with Pop; Deliver becomes a no-op.
func (in *Inbox) Close() {
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
	in.cond.Broadcast()
}
