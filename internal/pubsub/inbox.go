package pubsub

import (
	"unicache/internal/types"
)

// Inbox is a FIFO event queue connecting the cache commit path (producer)
// to one consumer goroutine — an automaton drain loop or a Dispatcher. It
// is the Go analogue of the per-automaton PThread mailbox in the paper's
// runtime (§5), extended with an optional bound and overflow Policy:
// enqueueing into an unbounded or non-Block inbox never blocks, which is
// what lets Publish/PublishBatch hand events to every subscriber in O(1)
// per subscriber without executing consumer code under the topic lock. The
// consumer blocks in Pop/PopBatch until an event arrives or the inbox is
// closed.
type Inbox struct {
	Queue[*types.Event]
}

var _ Subscriber = (*Inbox)(nil)

// NewInbox returns an empty, open, unbounded inbox.
func NewInbox() *Inbox { return NewInboxWith(QueueOpts{}) }

// NewInboxWith returns an empty open inbox with the given bound and
// overflow policy. Capacity <= 0 means unbounded.
func NewInboxWith(opts QueueOpts) *Inbox {
	in := &Inbox{}
	in.Queue.init(opts)
	// An inbox owns the per-subscriber reference the publisher takes on each
	// pooled event (Topic.Publish retains before Deliver): events the inbox
	// sheds, rejects, or receives after close release that reference here;
	// events popped transfer it to the consumer. No-op for unpooled events.
	in.Queue.SetOnDiscard(func(ev *types.Event) { ev.Release() })
	return in
}

// Deliver implements Subscriber: FIFO enqueue, applying the inbox's
// overflow policy when bounded and full (Block parks the publisher —
// stalling the topic — until the consumer drains; DropOldest evicts;
// Fail closes the inbox). Events delivered to a closed inbox are dropped.
func (in *Inbox) Deliver(ev *types.Event) { in.Push(ev) }

// DeliverBatch implements Subscriber: the whole run is enqueued under one
// lock acquisition and the consumer is signalled once, which is what makes
// the batch commit pipeline's fan-out cost amortise over the batch. The
// overflow policy applies as in Deliver; a Block inbox smaller than the
// run absorbs it in chunks as the consumer drains.
func (in *Inbox) DeliverBatch(evs []*types.Event) { in.PushBatch(evs) }
