package pubsub

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/types"
)

// --- overflow policies -----------------------------------------------------

func TestInboxBlockPolicyParksPublisher(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 2, Policy: Block})
	in.Deliver(mkEvent(t, "T", 1))
	in.Deliver(mkEvent(t, "T", 2))

	delivered := make(chan struct{})
	go func() {
		in.Deliver(mkEvent(t, "T", 3)) // full: must park until a Pop
		close(delivered)
	}()
	select {
	case <-delivered:
		t.Fatal("Deliver into a full Block inbox returned without a consumer")
	case <-time.After(20 * time.Millisecond):
	}
	if ev, ok := in.Pop(); !ok || ev.Tuple.Seq != 1 {
		t.Fatalf("Pop = %v, %v", ev, ok)
	}
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("parked Deliver did not resume after Pop freed space")
	}
	for want := uint64(2); want <= 3; want++ {
		if ev, ok := in.Pop(); !ok || ev.Tuple.Seq != want {
			t.Fatalf("Pop = %v, %v (want seq %d)", ev, ok, want)
		}
	}
	if in.Dropped() != 0 {
		t.Errorf("Block dropped %d events", in.Dropped())
	}
}

func TestInboxBlockBatchLargerThanCapacity(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 4, Policy: Block})
	const n = 50
	done := make(chan struct{})
	go func() {
		in.DeliverBatch(mkBatch(t, "T", 1, n)) // absorbed in chunks
		close(done)
	}()
	for i := uint64(1); i <= n; i++ {
		ev, ok := in.Pop()
		if !ok || ev.Tuple.Seq != i {
			t.Fatalf("Pop %d = %v, %v", i, ev, ok)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("chunked DeliverBatch never completed")
	}
}

func TestInboxCloseWakesParkedPublisher(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 1, Policy: Block})
	in.Deliver(mkEvent(t, "T", 1))
	done := make(chan struct{})
	go func() {
		in.Deliver(mkEvent(t, "T", 2))
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	in.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the parked publisher")
	}
}

func TestInboxDropOldest(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 3, Policy: DropOldest})
	for i := uint64(1); i <= 10; i++ {
		in.Deliver(mkEvent(t, "T", i))
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	if in.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", in.Dropped())
	}
	// The survivors are the newest, still in order.
	for want := uint64(8); want <= 10; want++ {
		ev, ok := in.TryPop()
		if !ok || ev.Tuple.Seq != want {
			t.Fatalf("TryPop = %v, %v (want seq %d)", ev, ok, want)
		}
	}
}

func TestInboxDropOldestBatch(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 4, Policy: DropOldest})
	in.DeliverBatch(mkBatch(t, "T", 1, 3))
	// Run overflows the remaining space: the 3 queued events make room.
	in.DeliverBatch(mkBatch(t, "T", 4, 3))
	if got := in.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	for want := uint64(3); want <= 6; want++ {
		ev, ok := in.TryPop()
		if !ok || ev.Tuple.Seq != want {
			t.Fatalf("TryPop = %v, %v (want seq %d)", ev, ok, want)
		}
	}
	// A run larger than the whole capacity keeps only its newest events.
	in.DeliverBatch(mkBatch(t, "T", 10, 9))
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
	for want := uint64(15); want <= 18; want++ {
		ev, ok := in.TryPop()
		if !ok || ev.Tuple.Seq != want {
			t.Fatalf("TryPop = %v, %v (want seq %d)", ev, ok, want)
		}
	}
}

func TestInboxFailPolicyClosesOnOverflow(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 2, Policy: Fail})
	in.Deliver(mkEvent(t, "T", 1))
	in.Deliver(mkEvent(t, "T", 2))
	if in.Failed() {
		t.Fatal("inbox failed before overflowing")
	}
	in.Deliver(mkEvent(t, "T", 3)) // overflow: rejected, inbox closes
	if !in.Failed() {
		t.Fatal("overflow did not fail the inbox")
	}
	// What was queued before the overflow still drains, then closure.
	for want := uint64(1); want <= 2; want++ {
		ev, ok := in.Pop()
		if !ok || ev.Tuple.Seq != want {
			t.Fatalf("Pop = %v, %v (want seq %d)", ev, ok, want)
		}
	}
	if _, ok := in.Pop(); ok {
		t.Fatal("Pop after fail+drain should report closed")
	}
	if in.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1 (the rejected event)", in.Dropped())
	}
}

// --- generic queue ---------------------------------------------------------

func TestQueuePushPopGeneric(t *testing.T) {
	q := NewQueue[string](QueueOpts{})
	if !q.PushBatch([]string{"a", "b"}) || !q.Push("c") {
		t.Fatal("push into open queue failed")
	}
	for _, want := range []string{"a", "b", "c"} {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %q, %v (want %q)", got, ok, want)
		}
	}
	q.Close()
	if q.Push("d") {
		t.Fatal("push after close should report false")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after close+drain should report closed")
	}
}

// --- dispatcher ------------------------------------------------------------

func TestDispatcherDeliversInOrder(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("T"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []uint64
	in := NewInboxWith(QueueOpts{Capacity: 64, Policy: Block})
	d := NewDispatcher(in, func(ev *types.Event) {
		mu.Lock()
		seqs = append(seqs, ev.Tuple.Seq)
		mu.Unlock()
	}, DispatcherConfig{})
	if err := b.Subscribe(1, "T", d.Inbox()); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := uint64(1); i <= n; i += 5 {
		if err := b.PublishBatch(mkBatch(t, "T", i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := len(seqs)
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatched %d of %d events", got, n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("commit order violated at %d: seq %d", i, s)
		}
	}
	b.Unsubscribe(1)
	d.Stop()
}

// TestDispatcherStopDiscardsQueued pins the unsubscription contract: Stop
// must return promptly with events still queued, and the callback must
// never run after Stop returns. Run with -race.
func TestDispatcherStopDiscardsQueued(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	in := NewInbox()
	d := NewDispatcher(in, func(*types.Event) {
		calls.Add(1)
		<-gate // every call parks until the test feeds it a token
	}, DispatcherConfig{})
	in.DeliverBatch(mkBatch(t, "T", 1, 100))

	// Wait for the dispatcher to park inside the first callback, then stop
	// while it is in flight. Stop sets its flag before anything else, so
	// once the parked callback is released the dispatcher abandons the
	// other 99 queued events; tokens are fed one at a time so a straggling
	// flag costs at most an extra delivery or two, never the whole queue.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never reached the callback")
		}
		time.Sleep(time.Millisecond)
	}
	stopDone := make(chan struct{})
	go func() { d.Stop(); close(stopDone) }()
release:
	for {
		select {
		case gate <- struct{}{}: // release one in-flight callback
			time.Sleep(time.Millisecond)
		case <-stopDone:
			break release
		}
	}
	n := calls.Load()
	if n >= 100 {
		t.Fatal("Stop drained the whole queue instead of discarding")
	}
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != n {
		t.Fatalf("callback ran after Stop returned: %d -> %d", n, calls.Load())
	}
}

func TestDispatcherOnFailRunsOnce(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 1, Policy: Fail})
	var entered sync.Once
	enteredCh := make(chan struct{})
	gate := make(chan struct{})
	failed := make(chan struct{})
	var d *Dispatcher
	d = NewDispatcher(in, func(*types.Event) {
		entered.Do(func() { close(enteredCh) })
		<-gate
	}, DispatcherConfig{
		OnFail: func() {
			d.Stop() // OnFail may Stop: it runs off the dispatcher goroutine
			close(failed)
		},
	})
	in.Deliver(mkEvent(t, "T", 1))
	<-enteredCh                    // dispatcher parked in the callback, queue empty
	in.Deliver(mkEvent(t, "T", 2)) // queued: fills the 1-slot inbox
	in.Deliver(mkEvent(t, "T", 3)) // overflow: fails the inbox
	if !in.Failed() {
		t.Fatal("inbox did not fail on overflow")
	}
	close(gate)
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("OnFail never ran after a Fail overflow")
	}
}
