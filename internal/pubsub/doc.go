// Package pubsub implements the topic-based publish/subscribe substrate of
// the unified cache. Every table in the cache corresponds to a topic with
// the same name; each tuple insertion is published as an event on that
// topic and delivered to all subscribed automata in strict per-topic
// time-of-insertion order (§3, §5 of the paper).
//
// # Concurrency and ordering contract
//
// Each Topic owns one mutex that serialises publications against
// subscription changes. Publish and PublishBatch run entirely under that
// lock, so every subscriber of a topic observes the identical event
// interleaving — this is the mechanism behind the paper's §5 ordering
// invariant. The contract is scoped to one topic: the broker imposes no
// ordering between events of different topics, which is what lets the
// cache's per-topic commit domains publish into independent topics in
// parallel.
//
// DeliverBatch promises subscribers a run of events in commit order, all
// from one topic, with contiguous per-topic sequence numbers assigned by
// the committing domain. The slice itself must not be retained or mutated
// (the same backing array is handed to every subscriber); retaining the
// *Event pointers is fine.
//
// # Enqueue-only delivery
//
// Deliver and DeliverBatch are called with the topic lock held, and their
// contract is ENQUEUE-ONLY: a subscriber must do no more than move the
// events into a queue and signal its consumer — O(1) per subscriber, never
// executing consumer code under the lock. Every subscriber in this
// codebase is therefore Inbox-backed: the bounded (or unbounded) Inbox
// absorbs the run, and the consumer — an automaton drain loop or a
// Dispatcher goroutine — invokes the actual consumer logic in commit order
// on its own time. This also makes publish() from inside a consumer
// re-entrant: an automaton may publish into a topic it is itself
// subscribed to without deadlock, as long as its inbox can absorb the
// events (see below).
//
// # Bounded inboxes and overflow policies
//
// An Inbox may be bounded (NewInboxWith) with a per-subscription overflow
// Policy deciding what a full inbox does with new events:
//
//   - Block parks the publisher until the consumer drains. Nothing is
//     lost, but the publisher holds the topic lock while parked, so a
//     persistently slow consumer stalls its topic — Block turns overflow
//     into backpressure. A consumer that publishes back into a topic it is
//     subscribed to can deadlock against its own full inbox; such cycles
//     need headroom, an unbounded inbox, or a lossy policy.
//   - DropOldest evicts the oldest queued events (counted in Dropped) and
//     never blocks: a slow tap sees a gapped but ordered suffix of the
//     stream, and the topic never stalls.
//   - Fail closes the inbox on overflow. The consumer drains what was
//     queued, observes closure with Failed() == true, and detaches the
//     subscription (Dispatcher automates this via OnFail) — a persistently
//     slow consumer becomes an explicit detach instead of silent loss.
//
// Depth (Len) and Dropped counters expose the queue state for monitoring.
package pubsub
