// Package pubsub implements the topic-based publish/subscribe substrate of
// the unified cache. Every table in the cache corresponds to a topic with
// the same name; each tuple insertion is published as an event on that
// topic and delivered to all subscribed automata in strict per-topic
// time-of-insertion order (§3, §5 of the paper).
//
// # Concurrency and ordering contract
//
// Each Topic owns one mutex that serialises publications against
// subscription changes. Publish and PublishBatch run entirely under that
// lock, so every subscriber of a topic observes the identical event
// interleaving — this is the mechanism behind the paper's §5 ordering
// invariant. The contract is scoped to one topic: the broker imposes no
// ordering between events of different topics, which is what lets the
// cache's per-topic commit domains publish into independent topics in
// parallel.
//
// DeliverBatch promises subscribers a run of events in commit order, all
// from one topic, with contiguous per-topic sequence numbers assigned by
// the committing domain. The slice itself must not be retained or mutated
// (the same backing array is handed to every subscriber); retaining the
// *Event pointers is fine. Deliver and DeliverBatch must not block — they
// are called with the topic lock held, so a blocking subscriber stalls its
// topic (and only its topic).
//
// Subscribers that do real work must therefore be inbox-backed: an
// unbounded FIFO Inbox absorbs the run without blocking and hands it to
// the consumer goroutine, which keeps delivery from stalling the
// publisher and makes publish() from inside an automaton re-entrant — an
// automaton may publish into a topic it is itself subscribed to without
// deadlock. A subscriber that instead blocks synchronously inside
// Deliver/DeliverBatch stalls its topic's commits for the duration.
package pubsub
