package pubsub

import (
	"sync"
	"sync/atomic"
)

// Policy selects what a bounded Queue does when a push finds it full.
type Policy uint8

const (
	// Block parks the pusher until the consumer frees space (or the queue
	// closes). It never loses an element; the cost is backpressure — a
	// pusher holding a topic lock stalls that topic until the consumer
	// drains. A consumer that pushes back into a queue it is itself
	// draining (an automaton publishing into its own topic) can deadlock
	// once the queue is full; such cycles need headroom, an unbounded
	// queue, or a lossy policy.
	Block Policy = iota
	// DropOldest evicts the oldest queued elements to make room and counts
	// them in Dropped. The pusher never blocks; the consumer sees a gapped
	// but otherwise ordered suffix of the stream.
	DropOldest
	// Fail closes the queue on overflow (Failed reports true): the element
	// is rejected, subsequent pushes fail, and the consumer — after
	// draining what was queued — observes closure and can detach the
	// subscription. This turns a persistently slow consumer into an
	// explicit detach instead of silent loss or backpressure.
	Fail
)

// String names the policy for flags and logs.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "dropoldest"
	case Fail:
		return "fail"
	}
	return "unknown"
}

// QueueOpts configures a Queue or Inbox.
type QueueOpts struct {
	// Capacity bounds the number of queued elements; <= 0 means unbounded
	// (every Policy is then moot — pushes always succeed immediately).
	Capacity int
	// Policy selects the overflow behaviour of a bounded queue.
	Policy Policy
}

// Queue is a FIFO connecting one producer side (pushes never reorder) to
// one consumer goroutine, optionally bounded with an overflow Policy. It is
// the core under Inbox (events) and the RPC push dispatchers (encoded
// payloads). Pushes signal the consumer; a bounded Block queue additionally
// parks pushers until the consumer frees space.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	q        []T
	head     int
	capacity int
	policy   Policy
	closed   bool
	failed   bool
	dropped  atomic.Uint64
	// onDiscard, when set (SetOnDiscard), receives every element the queue
	// took in but will never hand to the consumer — see SetOnDiscard.
	onDiscard func(T)
	// consumed counts elements handed to the consumer, incremented under
	// mu in the same critical section that removes them — so an observer
	// seeing Len() == 0 and Consumed() unchanged knows nothing is in
	// flight between the queue and the consumer.
	consumed uint64
}

// NewQueue returns an empty open queue.
func NewQueue[T any](opts QueueOpts) *Queue[T] {
	q := &Queue[T]{}
	q.init(opts)
	return q
}

// init prepares a zero Queue in place (used by Inbox, which embeds one).
func (q *Queue[T]) init(opts QueueOpts) {
	q.capacity = opts.Capacity
	q.policy = opts.Policy
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
}

// SetOnDiscard installs a hook invoked once for every element the queue
// takes in but never hands to the consumer: DropOldest evictions, Fail
// rejections, pushes into a closed queue, and the unenqueued remainder of a
// partially accepted Block batch. Installing it gives the queue ownership of
// everything pushed — a pooled element's reference is then always either
// transferred to the consumer by a pop or released by the hook, never
// silently dropped. The hook runs under the queue lock and must not call
// back into the queue. Install before the queue is shared; the field is not
// synchronised against concurrent pushes.
func (q *Queue[T]) SetOnDiscard(fn func(T)) { q.onDiscard = fn }

// discardLocked routes one never-delivered element to the hook. Callers
// hold q.mu.
func (q *Queue[T]) discardLocked(v T) {
	if q.onDiscard != nil {
		q.onDiscard(v)
	}
}

// sizeLocked returns the number of queued elements. Callers hold q.mu.
func (q *Queue[T]) sizeLocked() int { return len(q.q) - q.head }

// dropLocked evicts the n oldest queued elements. Callers hold q.mu.
func (q *Queue[T]) dropLocked(n int) {
	var zero T
	for i := 0; i < n; i++ {
		q.discardLocked(q.q[q.head])
		q.q[q.head] = zero
		q.head++
	}
	q.dropped.Add(uint64(n))
	q.compactLocked()
}

// compactLocked reclaims the consumed prefix of the backing array once it
// dominates the queue. Callers hold q.mu.
func (q *Queue[T]) compactLocked() {
	if q.head > 256 && q.head*2 >= len(q.q) {
		q.q = append(q.q[:0], q.q[q.head:]...)
		q.head = 0
	}
}

// failLocked closes the queue under the Fail policy. Callers hold q.mu;
// both conditions are broadcast so parked pushers and the consumer wake.
func (q *Queue[T]) failLocked() {
	q.failed = true
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Push enqueues one element, applying the overflow policy when the queue is
// bounded and full. It reports whether the element was accepted: false
// means the queue was closed (or failed) — under Fail, the overflowing push
// itself is the one rejected.
func (q *Queue[T]) Push(v T) bool {
	q.mu.Lock()
	if q.closed {
		q.discardLocked(v)
		q.mu.Unlock()
		return false
	}
	if q.capacity > 0 && q.sizeLocked() >= q.capacity {
		switch q.policy {
		case Block:
			for q.sizeLocked() >= q.capacity && !q.closed {
				q.notFull.Wait()
			}
			if q.closed {
				q.discardLocked(v)
				q.mu.Unlock()
				return false
			}
		case DropOldest:
			q.dropLocked(q.sizeLocked() - q.capacity + 1)
		case Fail:
			q.dropped.Add(1)
			q.discardLocked(v)
			q.failLocked()
			q.mu.Unlock()
			return false
		}
	}
	q.q = append(q.q, v)
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// PushBatch enqueues a run of elements under one lock acquisition with one
// consumer signal — the batch analogue of Push. FIFO order within the run
// is preserved; under Block, a run larger than the remaining space is
// enqueued in chunks as the consumer frees room (the consumer is signalled
// before each wait, so it can run while the pusher parks). It reports
// whether every element was accepted; under DropOldest the run itself is
// accepted in full (older queued elements are evicted, and a run larger
// than the whole capacity keeps only its newest elements).
func (q *Queue[T]) PushBatch(vs []T) bool {
	if len(vs) == 0 {
		return true
	}
	q.mu.Lock()
	if q.closed {
		for _, v := range vs {
			q.discardLocked(v)
		}
		q.mu.Unlock()
		return false
	}
	if q.capacity > 0 {
		switch q.policy {
		case Block:
			for len(vs) > 0 {
				for q.sizeLocked() >= q.capacity && !q.closed {
					q.notEmpty.Signal()
					q.notFull.Wait()
				}
				if q.closed {
					// Elements of earlier chunks are already enqueued and
					// will reach the consumer (or its close-time drain); the
					// unenqueued remainder is discarded here.
					for _, v := range vs {
						q.discardLocked(v)
					}
					q.mu.Unlock()
					return false
				}
				n := q.capacity - q.sizeLocked()
				if n > len(vs) {
					n = len(vs)
				}
				q.q = append(q.q, vs[:n]...)
				vs = vs[n:]
			}
			q.mu.Unlock()
			q.notEmpty.Signal()
			return true
		case DropOldest:
			if len(vs) >= q.capacity {
				// The run alone overflows the queue: everything queued and
				// the run's own oldest elements are the drop. Zero the
				// whole backing array so the discarded elements are not
				// pinned by it.
				q.dropped.Add(uint64(q.sizeLocked() + len(vs) - q.capacity))
				var zero T
				for i := q.head; i < len(q.q); i++ {
					q.discardLocked(q.q[i])
				}
				for i := range q.q {
					q.q[i] = zero
				}
				q.q = q.q[:0]
				q.head = 0
				for _, v := range vs[:len(vs)-q.capacity] {
					q.discardLocked(v)
				}
				vs = vs[len(vs)-q.capacity:]
			} else if over := q.sizeLocked() + len(vs) - q.capacity; over > 0 {
				q.dropLocked(over)
			}
		case Fail:
			if q.sizeLocked()+len(vs) > q.capacity {
				q.dropped.Add(uint64(len(vs)))
				for _, v := range vs {
					q.discardLocked(v)
				}
				q.failLocked()
				q.mu.Unlock()
				return false
			}
		}
	}
	q.q = append(q.q, vs...)
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// Pop blocks until an element is available and returns it; ok is false once
// the queue is closed and drained.
func (q *Queue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.q) && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.head >= len(q.q) {
		return zero, false
	}
	v := q.q[q.head]
	q.q[q.head] = zero
	q.head++
	q.consumed++
	q.compactLocked()
	if q.capacity > 0 {
		// Only a bounded Block push ever waits on notFull; skip the
		// broadcast on the unbounded drain hot path.
		q.notFull.Broadcast()
	}
	return v, true
}

// PopBatch blocks until at least one element is available, then moves a run
// of up to max queued elements (max <= 0 means all) into buf — reusing its
// backing array — and returns it. Passing buf transfers ownership of its
// ENTIRE capacity: every slot up to cap(buf) is cleared on entry (so a
// consumer parked here does not pin its previous batch), so never pass a
// subslice whose backing array still holds elements in use. ok is false
// once the queue is closed and drained.
func (q *Queue[T]) PopBatch(max int, buf []T) ([]T, bool) {
	// Release the caller's previous batch before potentially parking in
	// Wait: a reused buffer must not keep the last run reachable while the
	// consumer sits idle.
	var zero T
	for i, full := 0, buf[:cap(buf)]; i < len(full); i++ {
		full[i] = zero
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.q) && !q.closed {
		q.notEmpty.Wait()
	}
	n := len(q.q) - q.head
	if n == 0 {
		return nil, false
	}
	if max > 0 && n > max {
		n = max
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, q.q[q.head])
		q.q[q.head] = zero
		q.head++
	}
	q.consumed += uint64(n)
	q.compactLocked()
	if q.capacity > 0 {
		// Only a bounded Block push ever waits on notFull; skip the
		// broadcast on the unbounded drain hot path.
		q.notFull.Broadcast()
	}
	return buf, true
}

// TryPop returns the next element without blocking; ok is false if none is
// queued.
func (q *Queue[T]) TryPop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.head >= len(q.q) {
		return zero, false
	}
	v := q.q[q.head]
	q.q[q.head] = zero
	q.head++
	q.consumed++
	q.compactLocked()
	if q.capacity > 0 {
		// Only a bounded Block push ever waits on notFull; skip the
		// broadcast on the unbounded drain hot path.
		q.notFull.Broadcast()
	}
	return v, true
}

// Consumed returns the number of elements popped so far, counted
// atomically with their removal: Len() == 0 with an unchanged Consumed()
// means no element sits unprocessed between queue and consumer.
func (q *Queue[T]) Consumed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.consumed
}

// Len returns the number of queued elements (the queue depth).
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sizeLocked()
}

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Dropped returns the number of elements lost to DropOldest eviction or
// rejected by a Fail overflow.
func (q *Queue[T]) Dropped() uint64 { return q.dropped.Load() }

// Failed reports whether a Fail-policy overflow closed the queue.
func (q *Queue[T]) Failed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failed
}

// Close marks the queue closed and wakes the consumer and any parked
// pushers. Pending elements may still be drained with Pop; Push becomes a
// no-op returning false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
