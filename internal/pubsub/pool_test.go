package pubsub

import (
	"sync"
	"testing"
	"time"

	"unicache/internal/types"
)

// Pooled-event lifecycle across the delivery pipeline: once SetOnDiscard is
// installed, every event a queue accepts is either handed to the consumer
// or released by the hook — shedding, rejection and close-time drops
// included. These tests run under -race in CI; the reference counts double
// as use-after-release tripwires.

func poolEvent(t *testing.T) *types.Event {
	t.Helper()
	s, err := types.NewSchema("S", false, -1, types.Column{Name: "v", Type: types.ColInt})
	if err != nil {
		t.Fatal(err)
	}
	return types.AcquireEvent("S", s, 1)
}

func TestQueueOnDiscardCoversEverySite(t *testing.T) {
	var discarded []int
	hook := func(v int) { discarded = append(discarded, v) }

	// DropOldest: Push evictions and both PushBatch branches.
	q := NewQueue[int](QueueOpts{Capacity: 2, Policy: DropOldest})
	q.SetOnDiscard(hook)
	q.Push(1)
	q.Push(2)
	q.Push(3)                   // evicts 1
	q.PushBatch([]int{4, 5})    // evicts 2, 3
	q.PushBatch([]int{6, 7, 8}) // whole-run branch: evicts 4, 5 and sheds 6
	if want := []int{1, 2, 3, 4, 5, 6}; len(discarded) != len(want) {
		t.Fatalf("discards = %v, want %v", discarded, want)
	} else {
		for i, v := range want {
			if discarded[i] != v {
				t.Fatalf("discards = %v, want %v", discarded, want)
			}
		}
	}
	// Survivors reach the consumer, not the hook.
	if a, _ := q.Pop(); a != 7 {
		t.Fatalf("pop = %d, want 7", a)
	}

	// Close-time drops: pushes into a closed queue are discarded.
	discarded = nil
	q.Close()
	q.Push(9)
	q.PushBatch([]int{10, 11})
	if len(discarded) != 3 {
		t.Fatalf("closed-queue discards = %v, want [9 10 11]", discarded)
	}

	// Fail: the rejected elements are discarded before the queue fails.
	discarded = nil
	qf := NewQueue[int](QueueOpts{Capacity: 1, Policy: Fail})
	qf.SetOnDiscard(hook)
	qf.Push(1)
	qf.Push(2) // rejected, fails the queue
	if len(discarded) != 1 || discarded[0] != 2 {
		t.Fatalf("fail discards = %v, want [2]", discarded)
	}
	discarded = nil
	qf2 := NewQueue[int](QueueOpts{Capacity: 1, Policy: Fail})
	qf2.SetOnDiscard(hook)
	qf2.PushBatch([]int{1, 2}) // whole batch rejected
	if len(discarded) != 2 {
		t.Fatalf("fail batch discards = %v, want [1 2]", discarded)
	}
}

// TestInboxShedsReleasePooledEvents: an inbox's discard hook releases the
// publisher-granted reference of every event it sheds, and delivered events
// keep theirs until the consumer releases them.
func TestInboxShedsReleasePooledEvents(t *testing.T) {
	in := NewInboxWith(QueueOpts{Capacity: 1, Policy: DropOldest})
	first := poolEvent(t)
	second := poolEvent(t)
	// Keep one observer reference each so Refs stays readable after the
	// inbox releases its own.
	first.Retain() // refs: ours + the one Deliver transfers
	second.Retain()
	in.Deliver(first)
	in.Deliver(second) // sheds first
	if got := first.Refs(); got != 1 {
		t.Errorf("shed event refs = %d, want 1 (inbox reference released)", got)
	}
	if got := second.Refs(); got != 2 {
		t.Errorf("queued event refs = %d, want 2 (inbox still holds one)", got)
	}
	ev, ok := in.Pop()
	if !ok || ev != second {
		t.Fatal("expected the surviving event")
	}
	ev.Release() // the popped reference now belongs to the consumer
	if got := second.Refs(); got != 1 {
		t.Errorf("after consumer release refs = %d, want 1", got)
	}
	first.Release()
	second.Release()
}

// TestDispatcherStopReleasesQueuedEvents: events still queued when the
// dispatcher stops are released by the Stop drain, and the processed
// counter absorbs them so Busy() reports idle.
func TestDispatcherStopReleasesQueuedEvents(t *testing.T) {
	in := NewInbox()
	block := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	d := NewDispatcher(in, func(*types.Event) {
		once.Do(func() { close(started) })
		<-block
	}, DispatcherConfig{})

	events := make([]*types.Event, 8)
	for i := range events {
		events[i] = poolEvent(t)
		events[i].Retain() // observer reference
		in.Deliver(events[i])
	}
	<-started // the first event is in the callback; the rest are queued
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(block)
	}()
	d.Stop()
	for i, ev := range events {
		if got := ev.Refs(); got != 1 {
			t.Errorf("event %d refs = %d, want 1 (dispatcher reference released)", i, got)
		}
	}
	if d.Busy() {
		t.Error("stopped dispatcher should not report busy")
	}
	for _, ev := range events {
		ev.Release()
	}
}
