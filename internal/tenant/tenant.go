package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"unicache/internal/types"
	"unicache/internal/uerr"
)

// Quota bounds one tenant's resource use. Zero values mean unlimited, so
// the zero Quota is "no limits" and a config may set only the dimensions it
// cares about.
type Quota struct {
	// MaxTables bounds the tenant's tables/topics (the shared Timer topic
	// is not counted).
	MaxTables int `json:"max_tables,omitempty"`
	// MaxAutomata bounds registered automata, behaviour and pattern alike.
	MaxAutomata int `json:"max_automata,omitempty"`
	// MaxInboxDepth clamps the inbox bound of every watch and automaton
	// the tenant registers: requests for a deeper — or unbounded — inbox
	// are silently bounded at this depth, and the requested overflow
	// policy (Block by default) does the shedding from there.
	MaxInboxDepth int `json:"max_inbox_depth,omitempty"`
	// MaxEventsPerSec rate-limits the tenant's commit path with a token
	// bucket of this sustained rate and a one-second burst. A single batch
	// larger than the burst can never pass and is rejected outright.
	MaxEventsPerSec int `json:"max_events_per_sec,omitempty"`
	// MaxWALBytes bounds the tenant's live write-ahead-log footprint on a
	// durable cache (ignored on an in-memory cache).
	MaxWALBytes int64 `json:"max_wal_bytes,omitempty"`
}

// Spec declares one tenant: its name (the namespace prefix), the
// shared-secret token the RPC handshake resolves, and its quota.
type Spec struct {
	Name  string `json:"name"`
	Token string `json:"token"`
	Quota Quota  `json:"quota"`
}

// Stats is one tenant's accounting rollup, the per-tenant row of the
// engine Stats surface.
type Stats struct {
	// Name is the tenant name.
	Name string
	// Tables/Automata/Watches count the tenant's live resources.
	Tables   int
	Automata int
	Watches  int
	// Events counts events committed by the tenant since start.
	Events uint64
	// EventsPerSec is the commit rate over the last completed second.
	EventsPerSec float64
	// Dropped counts events shed from the tenant's watch and automaton
	// inboxes (bounded DropOldest/Fail inboxes only).
	Dropped uint64
	// Rejected counts operations the tenant's quotas refused.
	Rejected uint64
	// WALBytes is the tenant's live write-ahead-log footprint.
	WALBytes int64
	// Quota echoes the configured limits so clients can compute headroom.
	Quota Quota
}

// Tenant is one live tenant: identity, quota, and usage accounting shared
// by every connection and scoped view bound to it.
type Tenant struct {
	name  string
	token string
	quota Quota

	// Token bucket for MaxEventsPerSec, refilled on demand from the cache
	// clock so virtual-clock tests are deterministic.
	bucketMu sync.Mutex
	tokens   float64
	lastFill types.Timestamp
	started  bool

	committed atomic.Uint64
	rejected  atomic.Uint64
	walBytes  atomic.Int64

	// Events/sec over per-second buckets of the cache clock: cur counts
	// the in-progress second, prev the last completed one (the reported
	// rate).
	rateMu   sync.Mutex
	rateSec  int64
	rateCur  uint64
	ratePrev uint64
}

// Name returns the tenant name (its namespace prefix).
func (t *Tenant) Name() string { return t.name }

// Token returns the tenant's shared-secret token.
func (t *Tenant) Token() string { return t.token }

// Quota returns the tenant's configured limits.
func (t *Tenant) Quota() Quota { return t.quota }

// AllowEvents asks the token bucket for n events' worth of budget at the
// given clock reading, consuming it when granted. With no MaxEventsPerSec
// quota it always grants. A refusal wraps uerr.ErrQuotaExceeded and is
// counted in Rejected.
func (t *Tenant) AllowEvents(now types.Timestamp, n int) error {
	rate := t.quota.MaxEventsPerSec
	if rate <= 0 || n <= 0 {
		return nil
	}
	t.bucketMu.Lock()
	if !t.started {
		t.started = true
		t.tokens = float64(rate)
		t.lastFill = now
	}
	if elapsed := now.Sub(t.lastFill).Seconds(); elapsed > 0 {
		t.tokens += elapsed * float64(rate)
		if t.tokens > float64(rate) {
			t.tokens = float64(rate)
		}
	}
	if now > t.lastFill {
		t.lastFill = now
	}
	ok := t.tokens >= float64(n)
	if ok {
		t.tokens -= float64(n)
	}
	t.bucketMu.Unlock()
	if !ok {
		t.rejected.Add(1)
		return fmt.Errorf("tenant %s: %w: events/sec (limit %d)", t.name, uerr.ErrQuotaExceeded, rate)
	}
	return nil
}

// NoteCommitted records n committed events at the given clock reading.
func (t *Tenant) NoteCommitted(now types.Timestamp, n int) {
	t.committed.Add(uint64(n))
	sec := int64(now) / int64(types.Timestamp(1e9))
	t.rateMu.Lock()
	switch {
	case sec == t.rateSec:
		t.rateCur += uint64(n)
	case sec == t.rateSec+1:
		t.ratePrev, t.rateSec, t.rateCur = t.rateCur, sec, uint64(n)
	case sec > t.rateSec:
		t.ratePrev, t.rateSec, t.rateCur = 0, sec, uint64(n)
	}
	t.rateMu.Unlock()
}

// NoteRejected counts one quota refusal recorded outside AllowEvents.
func (t *Tenant) NoteRejected() { t.rejected.Add(1) }

// NoteWAL adjusts the tenant's live WAL footprint by delta bytes (appends
// positive, snapshot truncations negative).
func (t *Tenant) NoteWAL(delta int64) { t.walBytes.Add(delta) }

// SetWAL pins the tenant's live WAL footprint (recovery seeds it from the
// replayed domains).
func (t *Tenant) SetWAL(v int64) { t.walBytes.Store(v) }

// WALBytes returns the tenant's live WAL footprint.
func (t *Tenant) WALBytes() int64 { return t.walBytes.Load() }

// CheckWAL enforces MaxWALBytes before a commit appends to the log. The
// check is against the current footprint, so a commit may overshoot by at
// most its own batch — conservative bookkeeping, never unbounded.
func (t *Tenant) CheckWAL() error {
	max := t.quota.MaxWALBytes
	if max <= 0 {
		return nil
	}
	if t.walBytes.Load() >= max {
		t.rejected.Add(1)
		return fmt.Errorf("tenant %s: %w: WAL bytes (limit %d)", t.name, uerr.ErrQuotaExceeded, max)
	}
	return nil
}

// ClampInbox applies the MaxInboxDepth soft limit to a requested inbox
// bound: capacity 0 or negative (unbounded) and requests beyond the quota
// are clamped to the quota depth. The returned capacity is what the inbox
// should be created with; clamped reports whether the quota bit.
func (t *Tenant) ClampInbox(capacity int) (int, bool) {
	max := t.quota.MaxInboxDepth
	if max <= 0 {
		return capacity, false
	}
	if capacity <= 0 || capacity > max {
		return max, true
	}
	return capacity, false
}

// StatsSnapshot returns the accounting rollup. The resource counts
// (tables, automata, watches, dropped) are the caller's — the cache's
// scoped view knows them — so this fills only the tenant-owned counters.
func (t *Tenant) StatsSnapshot(now types.Timestamp) Stats {
	sec := int64(now) / int64(types.Timestamp(1e9))
	t.rateMu.Lock()
	var rate uint64
	switch sec {
	case t.rateSec:
		rate = t.ratePrev
	case t.rateSec + 1:
		rate = t.rateCur
	}
	t.rateMu.Unlock()
	return Stats{
		Name:         t.name,
		Events:       t.committed.Load(),
		EventsPerSec: float64(rate),
		Rejected:     t.rejected.Load(),
		WALBytes:     t.walBytes.Load(),
		Quota:        t.quota,
	}
}

// Registry resolves tokens and names to tenants. It is immutable after
// construction.
type Registry struct {
	byName  map[string]*Tenant
	byToken map[string]*Tenant
	order   []string
}

// NewRegistry validates the specs and builds a registry. Names must be
// non-empty, unique, free of '/' (the namespace separator) and must not
// collide with the Timer topic; tokens must be non-empty and unique.
func NewRegistry(specs ...Spec) (*Registry, error) {
	r := &Registry{
		byName:  make(map[string]*Tenant, len(specs)),
		byToken: make(map[string]*Tenant, len(specs)),
	}
	for _, s := range specs {
		switch {
		case s.Name == "":
			return nil, fmt.Errorf("tenant: empty tenant name")
		case strings.Contains(s.Name, "/"):
			return nil, fmt.Errorf("tenant: name %q contains the namespace separator '/'", s.Name)
		case s.Name == types.TimerTopic:
			return nil, fmt.Errorf("tenant: name %q collides with the Timer topic", s.Name)
		case s.Token == "":
			return nil, fmt.Errorf("tenant %s: empty token", s.Name)
		}
		if _, dup := r.byName[s.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate name %q", s.Name)
		}
		if _, dup := r.byToken[s.Token]; dup {
			return nil, fmt.Errorf("tenant %s: token already in use by another tenant", s.Name)
		}
		t := &Tenant{name: s.Name, token: s.Token, quota: s.Quota}
		r.byName[s.Name] = t
		r.byToken[s.Token] = t
		r.order = append(r.order, s.Name)
	}
	return r, nil
}

// Resolve returns the tenant owning the token.
func (r *Registry) Resolve(token string) (*Tenant, bool) {
	t, ok := r.byToken[token]
	return t, ok
}

// Get returns the tenant by name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// Len returns the number of tenants.
func (r *Registry) Len() int { return len(r.order) }

// Tenants returns the tenants in declaration order.
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, len(r.order))
	for i, name := range r.order {
		out[i] = r.byName[name]
	}
	return out
}

// configFile is the JSON shape of `cached -tenants tenants.json`.
type configFile struct {
	Tenants []Spec `json:"tenants"`
}

// Parse builds a registry from JSON config bytes. An empty tenant list is
// an error — the way to run without tenants is to not configure them.
func Parse(data []byte) (*Registry, error) {
	var cfg configFile
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("tenant config: no tenants declared")
	}
	return NewRegistry(cfg.Tenants...)
}

// Load reads and parses a tenants.json config file.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	return Parse(data)
}

// Qualify maps a tenant-logical table/topic name to its physical name:
// "<ns>/<name>". The empty namespace is the identity, and the Timer topic
// is shared across tenants, never prefixed.
func Qualify(ns, name string) string {
	if ns == "" || name == types.TimerTopic {
		return name
	}
	return ns + "/" + name
}

// Logical maps a physical name back into a namespace: the Timer topic is
// visible to everyone, a "<ns>/"-prefixed name is stripped, and anything
// else is outside the namespace (ok == false). The empty namespace sees
// every physical name as-is.
func Logical(ns, physical string) (string, bool) {
	if ns == "" || physical == types.TimerTopic {
		return physical, true
	}
	if rest, ok := strings.CutPrefix(physical, ns+"/"); ok {
		return rest, true
	}
	return "", false
}

// SortStats orders rollup rows by tenant name for stable display.
func SortStats(rows []Stats) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}
