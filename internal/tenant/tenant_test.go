package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"unicache/internal/types"
	"unicache/internal/uerr"
)

func TestRegistryValidation(t *testing.T) {
	cases := []struct {
		name  string
		specs []Spec
	}{
		{"empty name", []Spec{{Name: "", Token: "x"}}},
		{"separator in name", []Spec{{Name: "a/b", Token: "x"}}},
		{"timer collision", []Spec{{Name: types.TimerTopic, Token: "x"}}},
		{"empty token", []Spec{{Name: "a", Token: ""}}},
		{"duplicate name", []Spec{{Name: "a", Token: "x"}, {Name: "a", Token: "y"}}},
		{"duplicate token", []Spec{{Name: "a", Token: "x"}, {Name: "b", Token: "x"}}},
	}
	for _, tc := range cases {
		if _, err := NewRegistry(tc.specs...); err == nil {
			t.Errorf("%s: NewRegistry accepted invalid specs", tc.name)
		}
	}
}

func TestRegistryResolution(t *testing.T) {
	r, err := NewRegistry(
		Spec{Name: "acme", Token: "tok-a", Quota: Quota{MaxTables: 2}},
		Spec{Name: "bravo", Token: "tok-b"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	a, ok := r.Resolve("tok-a")
	if !ok || a.Name() != "acme" {
		t.Fatalf("Resolve(tok-a) = %v, %v", a, ok)
	}
	if a.Quota().MaxTables != 2 {
		t.Fatalf("acme MaxTables = %d, want 2", a.Quota().MaxTables)
	}
	if _, ok := r.Resolve("nope"); ok {
		t.Fatal("Resolve accepted an unknown token")
	}
	b, ok := r.Get("bravo")
	if !ok || b.Token() != "tok-b" {
		t.Fatalf("Get(bravo) = %v, %v", b, ok)
	}
	names := make([]string, 0, 2)
	for _, tn := range r.Tenants() {
		names = append(names, tn.Name())
	}
	if names[0] != "acme" || names[1] != "bravo" {
		t.Fatalf("Tenants order = %v, want declaration order", names)
	}
}

func TestParseAndLoad(t *testing.T) {
	cfg := `{"tenants": [
		{"name": "acme", "token": "tok-a", "quota": {"max_tables": 3, "max_events_per_sec": 100}},
		{"name": "bravo", "token": "tok-b"}
	]}`
	r, err := Parse([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Get("acme")
	if q := a.Quota(); q.MaxTables != 3 || q.MaxEventsPerSec != 100 {
		t.Fatalf("parsed quota = %+v", q)
	}
	if _, err := Parse([]byte(`{"tenants": []}`)); err == nil {
		t.Fatal("Parse accepted an empty tenant list")
	}
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Fatal("Parse accepted malformed JSON")
	}

	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

func TestQualifyLogical(t *testing.T) {
	if got := Qualify("acme", "Flows"); got != "acme/Flows" {
		t.Fatalf("Qualify = %q", got)
	}
	if got := Qualify("", "Flows"); got != "Flows" {
		t.Fatalf("Qualify with empty ns = %q", got)
	}
	if got := Qualify("acme", types.TimerTopic); got != types.TimerTopic {
		t.Fatalf("Qualify(Timer) = %q, want shared unprefixed Timer", got)
	}
	if name, ok := Logical("acme", "acme/Flows"); !ok || name != "Flows" {
		t.Fatalf("Logical = %q, %v", name, ok)
	}
	if name, ok := Logical("acme", types.TimerTopic); !ok || name != types.TimerTopic {
		t.Fatalf("Logical(Timer) = %q, %v", name, ok)
	}
	if _, ok := Logical("acme", "bravo/Flows"); ok {
		t.Fatal("Logical leaked another tenant's physical name")
	}
	if _, ok := Logical("acme", "Flows"); ok {
		t.Fatal("Logical leaked an unprefixed physical name")
	}
}

// TestAllowEventsTokenBucket drives the rate limiter with explicit
// timestamps: a burst up to the rate passes, the next event is refused
// and counted, and elapsed time refills the bucket at the rate.
func TestAllowEventsTokenBucket(t *testing.T) {
	r, err := NewRegistry(Spec{Name: "acme", Token: "x", Quota: Quota{MaxEventsPerSec: 10}})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.Get("acme")
	t0 := types.Timestamp(1e9)
	if err := tn.AllowEvents(t0, 10); err != nil {
		t.Fatalf("burst at the limit refused: %v", err)
	}
	err = tn.AllowEvents(t0, 1)
	if !errors.Is(err, uerr.ErrQuotaExceeded) {
		t.Fatalf("over-budget event: got %v, want ErrQuotaExceeded", err)
	}
	// Half a second refills half the bucket.
	t1 := t0 + types.Timestamp(500*time.Millisecond)
	if err := tn.AllowEvents(t1, 5); err != nil {
		t.Fatalf("refilled budget refused: %v", err)
	}
	if err := tn.AllowEvents(t1, 1); !errors.Is(err, uerr.ErrQuotaExceeded) {
		t.Fatalf("drained bucket granted: %v", err)
	}
	// A single batch larger than the burst can never pass.
	t2 := t1 + types.Timestamp(time.Hour)
	if err := tn.AllowEvents(t2, 11); !errors.Is(err, uerr.ErrQuotaExceeded) {
		t.Fatalf("oversized batch granted: %v", err)
	}
	if got := tn.StatsSnapshot(t2).Rejected; got != 3 {
		t.Fatalf("Rejected = %d, want 3", got)
	}
	// No quota: always granted.
	r2, _ := NewRegistry(Spec{Name: "free", Token: "y"})
	free, _ := r2.Get("free")
	if err := free.AllowEvents(t0, 1<<30); err != nil {
		t.Fatalf("unquota'd tenant refused: %v", err)
	}
}

func TestCheckWAL(t *testing.T) {
	r, err := NewRegistry(Spec{Name: "acme", Token: "x", Quota: Quota{MaxWALBytes: 100}})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.Get("acme")
	if err := tn.CheckWAL(); err != nil {
		t.Fatalf("empty WAL refused: %v", err)
	}
	tn.NoteWAL(99)
	if err := tn.CheckWAL(); err != nil {
		t.Fatalf("under-limit WAL refused: %v", err)
	}
	tn.NoteWAL(1)
	if err := tn.CheckWAL(); !errors.Is(err, uerr.ErrQuotaExceeded) {
		t.Fatalf("at-limit WAL granted: %v", err)
	}
	tn.SetWAL(10)
	if err := tn.CheckWAL(); err != nil {
		t.Fatalf("truncated WAL refused: %v", err)
	}
}

func TestClampInbox(t *testing.T) {
	r, err := NewRegistry(Spec{Name: "acme", Token: "x", Quota: Quota{MaxInboxDepth: 8}})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.Get("acme")
	for _, tc := range []struct {
		req, want int
		clamped   bool
	}{
		{0, 8, true},   // unbounded request -> quota depth
		{-1, 8, true},  // negative -> quota depth
		{100, 8, true}, // beyond quota -> quota depth
		{4, 4, false},  // within quota -> untouched
		{8, 8, false},  // exactly at quota -> untouched
	} {
		got, clamped := tn.ClampInbox(tc.req)
		if got != tc.want || clamped != tc.clamped {
			t.Errorf("ClampInbox(%d) = %d, %v; want %d, %v", tc.req, got, clamped, tc.want, tc.clamped)
		}
	}
	// No quota: identity.
	r2, _ := NewRegistry(Spec{Name: "free", Token: "y"})
	free, _ := r2.Get("free")
	if got, clamped := free.ClampInbox(0); got != 0 || clamped {
		t.Fatalf("unquota'd ClampInbox(0) = %d, %v", got, clamped)
	}
}

// TestRateBuckets pins the events/sec rollup: the reported rate is the
// last completed second of the cache clock.
func TestRateBuckets(t *testing.T) {
	r, err := NewRegistry(Spec{Name: "acme", Token: "x"})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.Get("acme")
	sec := func(s int64) types.Timestamp { return types.Timestamp(s * 1e9) }
	tn.NoteCommitted(sec(10), 40)
	tn.NoteCommitted(sec(10), 2)
	if got := tn.StatsSnapshot(sec(10)).EventsPerSec; got != 0 {
		t.Fatalf("rate mid-first-second = %v, want 0 (no completed second yet)", got)
	}
	tn.NoteCommitted(sec(11), 7)
	if got := tn.StatsSnapshot(sec(11)).EventsPerSec; got != 42 {
		t.Fatalf("rate after rollover = %v, want 42", got)
	}
	if got := tn.StatsSnapshot(sec(11)).Events; got != 49 {
		t.Fatalf("Events = %d, want 49", got)
	}
	// A gap of several idle seconds zeroes the completed-second rate.
	tn.NoteCommitted(sec(20), 1)
	if got := tn.StatsSnapshot(sec(20)).EventsPerSec; got != 0 {
		t.Fatalf("rate after idle gap = %v, want 0", got)
	}
}
