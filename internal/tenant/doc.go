// Package tenant is the multi-tenancy policy layer: named tenants with
// shared-secret tokens, per-tenant resource quotas, and per-tenant usage
// accounting. It is pure policy — it holds no cache state and imports no
// engine packages — so every layer (the embedded cache's scoped views, the
// RPC listener's auth handshake, the façade's per-tenant engines) can share
// one Tenant object as the single source of truth for what a tenant may do
// and what it has done.
//
// A tenant's namespace is a prefix on the topic space: tenant "acme" sees
// table T as T while the cache stores it as "acme/T" (Qualify/Logical are
// the two directions). The Timer punctuation topic is deliberately shared:
// it carries only timestamps, every tenant's pattern automata need it to
// advance watermarks, and it is never counted against any quota.
//
// Quotas are enforced at four points by the cache's scoped views:
// CreateTable (MaxTables), Register (MaxAutomata), Watch/Register inbox
// bounds (MaxInboxDepth, a soft limit applied by clamping the requested
// bound — the PR 3 overflow policies then do the shedding), and the commit
// path (MaxEventsPerSec via a token bucket, MaxWALBytes against the live
// write-ahead-log footprint). Every rejection wraps uerr.ErrQuotaExceeded,
// which survives the wire.
//
// # Concurrency
//
// A Registry is immutable after construction; Resolve/Get/Tenants may be
// called from any goroutine without synchronisation. A Tenant is shared by
// every connection and scoped view of that tenant: the token bucket and the
// events/sec window are guarded by internal mutexes, the usage counters are
// atomics, and all methods are safe for concurrent use. AllowEvents both
// checks and consumes budget in one critical section, so concurrent
// committers cannot jointly overshoot the bucket; the WAL byte counter is
// maintained by the cache's commit/truncation paths and read lock-free, so
// a commit racing a snapshot may transiently observe the pre-truncation
// footprint — quota enforcement is conservative, never unsound.
package tenant
