// Package uerr defines the sentinel error taxonomy shared by every engine
// backend. The public unicache package re-exports these sentinels; the
// embedded cache wraps them into its error chains directly, and the RPC
// layer carries their identity over the wire as a numeric code next to the
// human-readable message, so errors.Is(err, ErrNoSuchTable) holds for a
// remote engine exactly as it does for an embedded one. The package is a
// leaf (it imports only the standard library) so any layer may wrap its
// sentinels without creating an import cycle.
package uerr

import "errors"

// The sentinel errors. Wrap them with fmt.Errorf("...: %w", Err...) so
// callers can test identity with errors.Is while still reading a specific
// message.
var (
	// ErrNoSuchTable: the named table/topic does not exist (tables are
	// topics, so a Watch on a missing topic reports the same sentinel).
	ErrNoSuchTable = errors.New("no such table")
	// ErrTableExists: create of a table/topic name already in use.
	ErrTableExists = errors.New("table already exists")
	// ErrBadSchema: a row does not fit its table's schema (wrong arity or
	// an uncoercible column value), or a schema definition is invalid.
	ErrBadSchema = errors.New("row does not match table schema")
	// ErrClosed: the engine (or its connection) has been closed.
	ErrClosed = errors.New("engine closed")
	// ErrNoSuchAutomaton: the automaton id is not registered (or not owned
	// by this connection, for a remote engine).
	ErrNoSuchAutomaton = errors.New("no such automaton")
	// ErrQuotaExceeded: a tenant quota (tables, automata, inbox depth,
	// events/sec or WAL bytes) rejected the operation.
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// ErrUnauthorized: the connection presented no valid tenant token for
	// an operation that requires one, or the token was unknown.
	ErrUnauthorized = errors.New("unauthorized")
)

// Wire codes. Code 0 is reserved for errors with no sentinel identity —
// the receiver reconstructs those as plain string errors.
const (
	codeGeneric uint16 = iota
	codeNoSuchTable
	codeTableExists
	codeBadSchema
	codeClosed
	codeNoSuchAutomaton
	codeQuotaExceeded
	codeUnauthorized
)

// Code returns the wire code of the first sentinel in err's chain
// (codeGeneric if none).
func Code(err error) uint16 {
	switch {
	case errors.Is(err, ErrNoSuchTable):
		return codeNoSuchTable
	case errors.Is(err, ErrTableExists):
		return codeTableExists
	case errors.Is(err, ErrBadSchema):
		return codeBadSchema
	case errors.Is(err, ErrClosed):
		return codeClosed
	case errors.Is(err, ErrNoSuchAutomaton):
		return codeNoSuchAutomaton
	case errors.Is(err, ErrQuotaExceeded):
		return codeQuotaExceeded
	case errors.Is(err, ErrUnauthorized):
		return codeUnauthorized
	}
	return codeGeneric
}

// FromCode reconstructs an error from its wire form: the message is
// preserved verbatim, and if the code names a sentinel the result wraps it
// so errors.Is matches on the receiving side.
func FromCode(code uint16, msg string) error {
	var sentinel error
	switch code {
	case codeNoSuchTable:
		sentinel = ErrNoSuchTable
	case codeTableExists:
		sentinel = ErrTableExists
	case codeBadSchema:
		sentinel = ErrBadSchema
	case codeClosed:
		sentinel = ErrClosed
	case codeNoSuchAutomaton:
		sentinel = ErrNoSuchAutomaton
	case codeQuotaExceeded:
		sentinel = ErrQuotaExceeded
	case codeUnauthorized:
		sentinel = ErrUnauthorized
	default:
		return errors.New(msg)
	}
	return &wireError{msg: msg, sentinel: sentinel}
}

// wireError is a decoded remote error: the remote message with the
// sentinel identity restored.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }
