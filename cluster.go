package unicache

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unicache/internal/gapl"
	"unicache/internal/pubsub"
	"unicache/internal/rpc"
	"unicache/internal/sql"
	"unicache/internal/uerr"
)

// TimerTopic is the per-node timer topic name. It exists on every node of
// a cluster, so the cluster treats it as node-local: automata subscribe
// to their home node's timer, and Tables/show-tables report it once.
const TimerTopic = "Timer"

// Cluster connects to a set of cached nodes and returns a location-
// transparent Engine over all of them: topics are hash-partitioned across
// the nodes with consistent hashing (rpc.Ring — virtual nodes, routing a
// pure function of the address set), so every client of the same address
// list routes identically with zero coordination.
//
// The paper's §5 ordering invariant is stated per topic, and every
// operation on a topic — create, insert, watch, automaton subscription —
// lands on the topic's one owning node, so the invariant holds across the
// cluster exactly as it does on a single cache: commits to one topic are
// totally ordered by the owner's commit domain, and no cross-node
// coordination exists to weaken (or slow) it.
//
//   - Exec routes by the statement's table (parsed client-side); `show
//     tables` fans out and merges.
//   - Insert/InsertBatch route to the owner, inheriting the Remote
//     backend's chunking and stream escalation; Batcher() gives the
//     MultiBatcher-style buffered path for mixed-table bulk loads that
//     fan out to all nodes concurrently.
//   - Watch forwards to the owner; the handle proxies Stats/Close.
//   - Register places the automaton on the owner of its first
//     subscription (its home) and bridges foreign subscriptions: the
//     topic is replicated onto the home node and a forwarder streams the
//     owner's events into the replica over the ordinary RPC paths, so a
//     source on node A feeds a sink on node B (see docs/ARCHITECTURE.md
//     for the semantics and limitations).
//   - Tables/Stats merge per-node results; handle and stats ids are
//     remapped (id·n ± node) so they stay unique and sign-correct
//     cluster-wide, and a handle's ID always matches its Stats row.
//   - Sentinel errors cross node routing unchanged: errors.Is answers
//     exactly as it does against Embedded and Remote (the conformance
//     suite runs the cluster as its fourth backend).
//
// Concurrency: the returned Engine is safe for concurrent use, as are
// its handles; per-topic event ordering follows the owning node's
// guarantees.
func Cluster(addrs ...string) (Engine, error) {
	return ClusterWith(addrs)
}

// ClusterWith is Cluster with dial options: WithToken authenticates every
// node connection with the same tenant token, so the whole cluster engine
// is the tenant's namespaced, quota-checked view (each node enforces its
// own partition's quotas from its identical tenants config).
func ClusterWith(addrs []string, opts ...DialOption) (Engine, error) {
	names := dedupeAddrs(addrs)
	if len(names) == 0 {
		return nil, errors.New("unicache: cluster needs at least one node address")
	}
	nodes := make([]*Remote, 0, len(names))
	for _, addr := range names {
		r, err := DialRemote(addr, opts...)
		if err != nil {
			for _, n := range nodes {
				_ = n.Close()
			}
			return nil, fmt.Errorf("unicache: cluster dial %s: %w", addr, err)
		}
		nodes = append(nodes, r)
	}
	return newCluster(names, nodes), nil
}

// Dial returns an Engine for an address spec: a single "host:port" dials
// one node (a Remote), a comma-separated list forms a Cluster over all of
// them. Tools accept user-supplied -remote/-addr flags through this one
// entry point, so pointing them at a cluster is purely a flag change —
// and WithToken makes either shape a tenant-bound engine.
func Dial(spec string, opts ...DialOption) (Engine, error) {
	addrs := dedupeAddrs(strings.Split(spec, ","))
	if len(addrs) == 1 {
		return DialRemote(addrs[0], opts...)
	}
	return ClusterWith(addrs, opts...)
}

// dedupeAddrs trims whitespace and drops empty and repeated entries,
// preserving first-seen order (the ring collapses duplicates by name; the
// node list must stay index-aligned with it).
func dedupeAddrs(addrs []string) []string {
	out := make([]string, 0, len(addrs))
	seen := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// clusterFromClients builds a cluster over pre-established connections
// (test seam: conformance runs the cluster backend over net.Pipe ends).
func clusterFromClients(names []string, clients []*rpc.Client) Engine {
	nodes := make([]*Remote, len(clients))
	for i, cl := range clients {
		nodes[i] = RemoteFromClient(cl)
	}
	return newCluster(names, nodes)
}

func newCluster(names []string, nodes []*Remote) *clusterEngine {
	return &clusterEngine{
		ring:    rpc.NewRing(names, 0),
		nodes:   nodes,
		stride:  int64(len(nodes)),
		bridges: make(map[string]*bridge),
	}
}

// clusterEngine is the Engine over a set of cached nodes. See Cluster.
type clusterEngine struct {
	ring   *rpc.Ring
	nodes  []*Remote
	stride int64 // id remapping stride = node count

	mu      sync.Mutex
	closed  bool
	bridges map[string]*bridge // key: bridgeKey(topic, home)
}

func (c *clusterEngine) guard() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("unicache: %w", ErrClosed)
	}
	return nil
}

// owner returns the node index owning a topic.
func (c *clusterEngine) owner(topic string) int { return c.ring.Owner(topic) }

// mapAutoID folds a node-local automaton id (positive) into the cluster
// id space: id·n + node. Injective across (id, node) and sign-preserving.
func (c *clusterEngine) mapAutoID(id int64, node int) int64 {
	return id*c.stride + int64(node)
}

// mapWatchID folds a node-local watcher id (negative) into the cluster id
// space: id·n − node. Injective across (id, node) and sign-preserving.
func (c *clusterEngine) mapWatchID(id int64, node int) int64 {
	return id*c.stride - int64(node)
}

// Exec implements Engine. The statement is parsed client-side only to
// find the table that routes it; the owning node re-parses and executes,
// so behaviour (including error text) is byte-identical to Remote. `show
// tables` fans out to every node and merges the rows; a statement that
// does not parse is sent to node 0, whose server reports the same parse
// error a single-node engine would.
func (c *clusterEngine) Exec(src string) (*Result, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	st, err := sql.Parse(src)
	if err != nil {
		return c.nodes[0].Exec(src)
	}
	switch s := st.(type) {
	case *sql.ShowTablesStmt:
		return c.execShowTables(src)
	case *sql.CreateStmt:
		return c.nodes[c.owner(s.Schema.Name)].Exec(src)
	case *sql.InsertStmt:
		return c.nodes[c.owner(s.Table)].Exec(src)
	case *sql.SelectStmt:
		return c.nodes[c.owner(s.Table)].Exec(src)
	case *sql.UpdateStmt:
		return c.nodes[c.owner(s.Table)].Exec(src)
	case *sql.DeleteStmt:
		return c.nodes[c.owner(s.Table)].Exec(src)
	case *sql.DescribeStmt:
		return c.nodes[c.owner(s.Table)].Exec(src)
	default:
		return c.nodes[0].Exec(src)
	}
}

// execShowTables merges every node's `show tables` rows, deduplicating
// topics that exist on all nodes (the timer) by keeping the owner's row.
func (c *clusterEngine) execShowTables(src string) (*Result, error) {
	var merged *Result
	rows := make(map[string][]Value)
	for i, n := range c.nodes {
		res, err := n.Exec(src)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = &Result{Cols: res.Cols}
		}
		for _, row := range res.Rows {
			if len(row) == 0 {
				continue
			}
			name := row[0].String()
			if _, dup := rows[name]; dup && c.owner(name) != i {
				continue
			}
			rows[name] = row
		}
	}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		merged.Rows = append(merged.Rows, rows[name])
	}
	return merged, nil
}

// Insert implements Engine: the tuple commits on the table's owner.
func (c *clusterEngine) Insert(table string, vals ...Value) error {
	if err := c.guard(); err != nil {
		return err
	}
	return c.nodes[c.owner(table)].Insert(table, vals...)
}

// InsertBatch implements Engine: the whole batch commits on the table's
// owner as one contiguous sequence run, inheriting the Remote path's
// chunking and stream escalation for large batches. Concurrent batches
// for different tables proceed on their owners independently — that is
// the cluster's horizontal scaling path.
func (c *clusterEngine) InsertBatch(table string, rows [][]Value) error {
	if err := c.guard(); err != nil {
		return err
	}
	return c.nodes[c.owner(table)].InsertBatch(table, rows)
}

// CreateTable implements Engine: the table lands on its owning node.
func (c *clusterEngine) CreateTable(schema *Schema) error {
	if err := c.guard(); err != nil {
		return err
	}
	return c.nodes[c.owner(schema.Name)].CreateTable(schema)
}

// Tables implements Engine: the union of every node's topics in lexical
// order (node-local topics like the timer appear once).
func (c *clusterEngine) Tables() ([]string, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	seen := make(map[string]struct{})
	for _, n := range c.nodes {
		names, err := n.Tables()
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			seen[name] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Watch implements Engine: the tap attaches on the topic's owner, so fn
// observes the topic's full commit order. The handle's ID is remapped
// into the cluster id space; Stats/Close proxy to the owner.
func (c *clusterEngine) Watch(topic string, fn func(*Event), opts ...WatchOption) (Watch, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	node := c.owner(topic)
	w, err := c.nodes[node].Watch(topic, fn, opts...)
	if err != nil {
		return nil, err
	}
	return &clusterWatch{c: c, w: w, node: node}, nil
}

// Register implements Engine: the automaton runs on the owner of its
// first subscribed topic (its home node). Subscriptions to topics owned
// by other nodes are bridged — see bridge — before registration, so the
// automaton observes those topics through a home-local replica fed from
// each owner in commit order. Sources that do not parse client-side are
// forwarded to node 0 for the server's (identical) compile error.
func (c *clusterEngine) Register(source string, opts ...AutomatonOption) (Automaton, error) {
	if err := c.guard(); err != nil {
		return nil, err
	}
	prog, err := gapl.Parse(source)
	if err != nil {
		return c.nodes[0].Register(source, opts...)
	}
	home := 0
	if len(prog.Subs) > 0 {
		home = c.homeNode(prog.Subs)
	}
	// Associations read tables server-side on the home node; a table
	// owned elsewhere cannot be read there. Per-topic partitioning is the
	// scaling contract, so this is a documented routing limit, not a
	// silent wrong answer.
	for _, a := range prog.Assocs {
		if a.Table != TimerTopic && c.owner(a.Table) != home {
			return nil, fmt.Errorf(
				"unicache: cluster automaton associates table %s owned by node %s but is homed on %s (its first subscription's owner); co-locate the tables or split the automaton",
				a.Table, c.ring.Name(c.owner(a.Table)), c.ring.Name(home))
		}
	}
	// Bridge every foreign subscription before registering, so the
	// automaton never misses post-registration events. The timer is
	// node-local by design: the home node's own timer feeds it.
	var acquired []*bridge
	release := func() {
		for _, b := range acquired {
			c.releaseBridge(b)
		}
	}
	for _, topic := range subscriptionTopics(prog) {
		if topic == TimerTopic || c.owner(topic) == home {
			continue
		}
		b, err := c.acquireBridge(topic, home)
		if err != nil {
			release()
			return nil, err
		}
		acquired = append(acquired, b)
	}
	h, err := c.nodes[home].Register(source, opts...)
	if err != nil {
		release()
		return nil, err
	}
	return &clusterAutomaton{c: c, h: h, node: home, bridges: acquired}, nil
}

// homeNode picks the automaton's node: the owner of its first
// subscription (declaration order, matching the source text).
func (c *clusterEngine) homeNode(subs []gapl.SubDecl) int {
	for _, s := range subs {
		if s.Topic != TimerTopic {
			return c.owner(s.Topic)
		}
	}
	return 0
}

// subscriptionTopics returns a program's distinct subscribed topics in
// declaration order.
func subscriptionTopics(prog *gapl.Program) []string {
	seen := make(map[string]struct{}, len(prog.Subs))
	out := make([]string, 0, len(prog.Subs))
	for _, s := range prog.Subs {
		if _, dup := seen[s.Topic]; dup {
			continue
		}
		seen[s.Topic] = struct{}{}
		out = append(out, s.Topic)
	}
	return out
}

// Stats implements Engine: every node's snapshot merged, with watch and
// automaton ids remapped exactly as the handles remap theirs, so a
// handle's ID always finds its row. Per-node durability sections are not
// merged (they describe one node's WAL, not a cluster property).
func (c *clusterEngine) Stats() (Stats, error) {
	if err := c.guard(); err != nil {
		return Stats{}, err
	}
	var out Stats
	for i, n := range c.nodes {
		st, err := n.Stats()
		if err != nil {
			return Stats{}, err
		}
		for _, w := range st.Watches {
			w.ID = c.mapWatchID(w.ID, i)
			out.Watches = append(out.Watches, w)
		}
		for _, a := range st.Automata {
			a.ID = c.mapAutoID(a.ID, i)
			out.Automata = append(out.Automata, a)
		}
		// On a tenant-bound cluster every node reports the same tenant;
		// resource and event counters sum across the partitions, while the
		// quota (enforced per node) is the common configured limit.
		if t := st.Tenant; t != nil {
			if out.Tenant == nil {
				cp := *t
				out.Tenant = &cp
			} else {
				out.Tenant.Tables += t.Tables
				out.Tenant.Automata += t.Automata
				out.Tenant.Watches += t.Watches
				out.Tenant.Events += t.Events
				out.Tenant.EventsPerSec += t.EventsPerSec
				out.Tenant.Dropped += t.Dropped
				out.Tenant.Rejected += t.Rejected
				out.Tenant.WALBytes += t.WALBytes
			}
		}
	}
	return out, nil
}

// Ping round-trips every node, returning the first failure.
func (c *clusterEngine) Ping() error {
	if err := c.guard(); err != nil {
		return err
	}
	for i, n := range c.nodes {
		if err := n.Client().Ping(); err != nil {
			return fmt.Errorf("unicache: cluster node %s: %w", c.ring.Name(i), err)
		}
	}
	return nil
}

// WaitIdle blocks until the whole cluster is quiescent or the timeout
// elapses: every node's automaton registry reports idle through the
// quiesce opcode AND every cross-node bridge has forwarded everything it
// enqueued, with no new bridge traffic between two consecutive
// observations (in-flight pushes on the wire are invisible to any one
// node's registry; counter stability across a full quiesce round is what
// rules them out).
func (c *clusterEngine) WaitIdle(timeout time.Duration) bool {
	if err := c.guard(); err != nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		before, settledBefore := c.bridgeProgress()
		idle := true
		for _, n := range c.nodes {
			remain := time.Until(deadline)
			if remain < 0 {
				remain = 0
			}
			if !n.WaitIdle(remain) {
				idle = false
				break
			}
		}
		if idle {
			after, settledAfter := c.bridgeProgress()
			if settledBefore && settledAfter && before == after {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// bridgeProgress sums enqueue counters across live bridges and reports
// whether every bridge has forwarded all of them.
func (c *clusterEngine) bridgeProgress() (enqueued uint64, settled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	settled = true
	for _, b := range c.bridges {
		e, f := b.enqueued.Load(), b.forwarded.Load()
		enqueued += e
		if e != f {
			settled = false
		}
	}
	return enqueued, settled
}

// Close implements Engine: stops every bridge, then closes every node
// connection (each server detaches that connection's watches and
// automata, the same teardown a crashed client gets).
func (c *clusterEngine) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	bridges := make([]*bridge, 0, len(c.bridges))
	for _, b := range c.bridges {
		bridges = append(bridges, b)
	}
	c.bridges = make(map[string]*bridge)
	c.mu.Unlock()
	for _, b := range bridges {
		b.stop()
	}
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ClusterBatcher is the cluster's bulk-load surface: rows Add()ed for any
// mix of tables are routed by the ring to per-node MultiBatchers (created
// on first use), so one producer pouring a mixed-table load fans out to
// every owning node concurrently — each node's batcher coalesces its
// tables' rows into batch commits and escalates oversized flushes to the
// streaming insert path, keeping client memory bounded no matter the load
// size. It is safe for concurrent use; per-table row order is preserved
// (all of a table's rows flow through one node's one batcher).
type ClusterBatcher struct {
	c *clusterEngine

	mu       sync.Mutex
	batchers map[int]*rpc.MultiBatcher
	closed   bool
}

// Batcher returns a new per-node batching writer for mixed-table bulk
// loads. Close it (or Flush) before relying on the rows being committed.
func (c *clusterEngine) Batcher() *ClusterBatcher {
	return &ClusterBatcher{c: c, batchers: make(map[int]*rpc.MultiBatcher)}
}

// Add buffers one row for table, routed to the owning node's batcher.
func (b *ClusterBatcher) Add(table string, vals ...Value) error {
	node := b.c.owner(table)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("unicache: cluster batcher is closed")
	}
	m, ok := b.batchers[node]
	if !ok {
		m = b.c.nodes[node].Client().NewMultiBatcher(rpc.BatcherConfig{})
		b.batchers[node] = m
	}
	b.mu.Unlock()
	return m.Add(table, vals...)
}

// Flush synchronously ships every node's buffered rows, returning the
// first error (all nodes are still attempted).
func (b *ClusterBatcher) Flush() error {
	var first error
	for _, m := range b.snapshot(false) {
		if err := m.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close rejects further Adds and closes every per-node batcher, shipping
// their remainders; a nil return means every accepted row committed.
func (b *ClusterBatcher) Close() error {
	var first error
	for _, m := range b.snapshot(true) {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (b *ClusterBatcher) snapshot(markClosed bool) []*rpc.MultiBatcher {
	b.mu.Lock()
	defer b.mu.Unlock()
	if markClosed {
		if b.closed {
			return nil
		}
		b.closed = true
	}
	out := make([]*rpc.MultiBatcher, 0, len(b.batchers))
	for _, m := range b.batchers {
		out = append(out, m)
	}
	return out
}

// clusterWatch proxies a node watch handle, remapping its id.
type clusterWatch struct {
	c    *clusterEngine
	w    Watch
	node int
}

func (w *clusterWatch) ID() int64     { return w.c.mapWatchID(w.w.ID(), w.node) }
func (w *clusterWatch) Topic() string { return w.w.Topic() }

func (w *clusterWatch) Stats() (SubscriptionStats, error) {
	st, err := w.w.Stats()
	if err != nil {
		return st, err
	}
	st.ID = w.c.mapWatchID(st.ID, w.node)
	return st, nil
}

func (w *clusterWatch) Close() error { return w.w.Close() }

// clusterAutomaton proxies a node automaton handle, remapping its id and
// holding its bridge references.
type clusterAutomaton struct {
	c       *clusterEngine
	h       Automaton
	node    int
	mu      sync.Mutex
	bridges []*bridge
}

func (h *clusterAutomaton) ID() int64              { return h.c.mapAutoID(h.h.ID(), h.node) }
func (h *clusterAutomaton) Events() <-chan []Value { return h.h.Events() }

func (h *clusterAutomaton) Stats() (AutomatonStats, error) {
	st, err := h.h.Stats()
	if err != nil {
		return st, err
	}
	st.ID = h.c.mapAutoID(st.ID, h.node)
	return st, nil
}

// Close unregisters the automaton on its home node and releases its
// bridges; the error reports the unregistration or the first bridge
// forwarding failure, whichever came first.
func (h *clusterAutomaton) Close() error {
	err := h.h.Close()
	h.mu.Lock()
	bridges := h.bridges
	h.bridges = nil
	h.mu.Unlock()
	for _, b := range bridges {
		if berr := h.c.releaseBridge(b); berr != nil && err == nil {
			err = berr
		}
	}
	return err
}

// bridgeQueueDepth bounds a bridge's forwarding queue. Block policy: a
// slow home node backpressures the owner's push path (and ultimately the
// owner's publishers) instead of dropping events or buffering unbounded —
// the same discipline every other inbox in the system follows.
const bridgeQueueDepth = 4096

// bridgeForwardBatch caps rows per forwarded InsertBatch, keeping the
// replica's commit granularity close to the server push path's coalescing.
const bridgeForwardBatch = 256

// bridge replicates one topic from its owning node onto an automaton's
// home node: a watch on the owner (the ordinary tap path, so events
// arrive in the topic's committed order) feeds a bounded queue drained by
// one forwarder goroutine that batch-inserts into the home node's replica
// table (the ordinary insert path, so home-side subscribers — the bridged
// automata — observe a totally ordered topic again). Bridged events get
// home-local sequence numbers and commit timestamps: per-topic order is
// preserved end to end, but cross-topic timing is the home node's view.
//
// Bridges are reference-counted per (topic, home) pair: any number of
// automata on one home share a single replica stream, so a hot source
// topic costs one tap on its owner per consuming node, not per automaton.
type bridge struct {
	topic string
	home  int
	refs  int // guarded by clusterEngine.mu

	w    Watch
	q    *pubsub.Queue[[]Value]
	done chan struct{}

	enqueued  atomic.Uint64
	forwarded atomic.Uint64
	errMu     sync.Mutex
	err       error
}

func bridgeKey(topic string, home int) string {
	return fmt.Sprintf("%s\x00%d", topic, home)
}

// acquireBridge returns the (topic → home) bridge, starting it on first
// use: the home replica table is created from the owner's schema and the
// owner-side watch attaches before this returns, so a subsequently
// registered automaton misses nothing committed after registration.
func (c *clusterEngine) acquireBridge(topic string, home int) (*bridge, error) {
	key := bridgeKey(topic, home)
	c.mu.Lock()
	if b, ok := c.bridges[key]; ok {
		b.refs++
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()

	owner := c.owner(topic)
	// The owner's describe cache supplies the schema; a missing topic
	// fails here with ErrNoSuchTable, exactly where a single-node
	// Register would fail its subscription bind.
	schema, err := c.nodes[owner].Client().Schema(topic)
	if err != nil {
		return nil, err
	}
	if err := c.nodes[home].CreateTable(schema); err != nil && !errors.Is(err, uerr.ErrTableExists) {
		return nil, fmt.Errorf("unicache: cluster bridge replica %s on %s: %w", topic, c.ring.Name(home), err)
	}

	b := &bridge{
		topic: topic,
		home:  home,
		refs:  1,
		q:     pubsub.NewQueue[[]Value](pubsub.QueueOpts{Capacity: bridgeQueueDepth, Policy: pubsub.Block}),
		done:  make(chan struct{}),
	}
	w, err := c.nodes[owner].Watch(topic, func(ev *Event) {
		if ev.Tuple == nil {
			return
		}
		// Copy: pooled events reclaim their value block after delivery.
		vals := make([]Value, len(ev.Tuple.Vals))
		copy(vals, ev.Tuple.Vals)
		if b.q.Push(vals) {
			b.enqueued.Add(1)
		}
	})
	if err != nil {
		return nil, err
	}
	b.w = w
	go b.forward(c.nodes[home])

	c.mu.Lock()
	if existing, ok := c.bridges[key]; ok {
		// Lost a construction race; keep the established one.
		existing.refs++
		c.mu.Unlock()
		b.stop()
		return existing, nil
	}
	c.bridges[key] = b
	c.mu.Unlock()
	return b, nil
}

// releaseBridge drops one reference, stopping the bridge when the last
// consumer goes; it returns the bridge's first forwarding error (if any)
// so automaton Close surfaces silent replication failures.
func (c *clusterEngine) releaseBridge(b *bridge) error {
	c.mu.Lock()
	b.refs--
	last := b.refs <= 0
	if last {
		delete(c.bridges, bridgeKey(b.topic, b.home))
	}
	c.mu.Unlock()
	if last {
		b.stop()
	}
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.err
}

// forward drains the bridge queue into the home node's replica table in
// bounded batches until the queue closes.
func (b *bridge) forward(home *Remote) {
	defer close(b.done)
	buf := make([][]Value, 0, bridgeForwardBatch)
	for {
		batch, ok := b.q.PopBatch(bridgeForwardBatch, buf[:0])
		if len(batch) > 0 {
			if err := home.InsertBatch(b.topic, batch); err != nil {
				b.errMu.Lock()
				if b.err == nil {
					b.err = fmt.Errorf("unicache: cluster bridge %s: %w", b.topic, err)
				}
				b.errMu.Unlock()
			}
			// Counted even on error: the rows left the queue either way,
			// and WaitIdle tracks settlement, not success (the error
			// surfaces through releaseBridge).
			b.forwarded.Add(uint64(len(batch)))
		}
		if !ok {
			return
		}
	}
}

// stop detaches the owner-side watch, closes the queue (the forwarder
// drains what is buffered, then exits) and waits for the forwarder.
func (b *bridge) stop() {
	_ = b.w.Close()
	b.q.Close()
	<-b.done
}
