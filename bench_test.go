// Benchmarks regenerating the paper's evaluation (§6), one bench per
// measured table/figure, plus ablations of the design decisions DESIGN.md
// calls out. cmd/benchrunner prints the same experiments in the paper's
// row/series form; these testing.B targets expose them to `go test -bench`.
package unicache

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/cache"
	"unicache/internal/cayuga"
	"unicache/internal/experiments"
	"unicache/internal/gapl"
	"unicache/internal/pubsub"
	"unicache/internal/rpc"
	"unicache/internal/types"
	"unicache/internal/vm"
	"unicache/internal/workload"
)

// --- Fig. 7: cost of built-in functions ---------------------------------

// benchHost is a no-op vm.Host for microbenchmarks.
type benchHost struct {
	clock types.Timestamp
	sunk  int
}

func (h *benchHost) Now() types.Timestamp { h.clock++; return h.clock }
func (h *benchHost) Publish(string, []types.Value) error {
	h.sunk++
	return nil
}
func (h *benchHost) Send([]types.Value) error { h.sunk++; return nil }
func (h *benchHost) Print(string)             {}
func (h *benchHost) AssocLookup(string, string) (types.Value, bool, error) {
	return types.Nil, false, nil
}
func (h *benchHost) AssocInsert(string, string, types.Value) error { return nil }
func (h *benchHost) AssocHas(string, string) (bool, error)         { return false, nil }
func (h *benchHost) AssocRemove(string, string) (bool, error)      { return false, nil }
func (h *benchHost) AssocSize(string) (int, error)                 { return 0, nil }

func benchVM(b *testing.B, src string) (*vm.VM, *types.Event) {
	b.Helper()
	timer, err := types.NewSchema("Timer", false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := gapl.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := prog.Bind(map[string]*types.Schema{"Timer": timer}); err != nil {
		b.Fatal(err)
	}
	m, err := vm.New(prog, &benchHost{})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.RunInit(); err != nil {
		b.Fatal(err)
	}
	ev := &types.Event{Topic: "Timer", Schema: timer,
		Tuple: &types.Tuple{Seq: 1, TS: 1, Vals: []types.Value{types.Stamp(1)}}}
	return m, ev
}

// BenchmarkFig7Builtins times one invocation of each measured built-in per
// behaviour execution (the Fig. 6 template with limit = 1).
func BenchmarkFig7Builtins(b *testing.B) {
	for _, bc := range experiments.BuiltinCostCases(1) {
		b.Run(bc.Name, func(b *testing.B) {
			var src strings.Builder
			src.WriteString("subscribe t to Timer;\nint i;\n")
			if bc.Decl != "" {
				src.WriteString(bc.Decl + "\n")
			}
			if bc.Init != "" {
				src.WriteString("initialization {\n" + bc.Init + "\n}\n")
			}
			src.WriteString("behavior {\n")
			if bc.Call != "" {
				src.WriteString(bc.Call + "\n")
			}
			src.WriteString("i += 1;\n}\n")
			m, ev := benchVM(b, src.String())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Deliver(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs. 9/10: delay at scale ------------------------------------------

func delayBench(b *testing.B, automata int) {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create table Flows (protocol integer, srcip varchar(16), sport integer,
		dstip varchar(16), dport integer, npkts integer, nbytes integer)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < automata; i++ {
		src := experiments.DelayProbeProgram(fmt.Sprintf("A%d", i), 1<<30)
		if _, err := c.Register(src, automaton.DiscardSink); err != nil {
			b.Fatal(err)
		}
	}
	vals := []types.Value{
		types.Int(6), types.Str("10.0.0.1"), types.Int(1234),
		types.Str("192.168.1.1"), types.Int(80), types.Int(10), types.Int(1500),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert("Flows", vals...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !c.Registry().WaitIdle(time.Minute) {
		b.Fatal("automata did not quiesce")
	}
}

// BenchmarkFig9DelayVsAutomata inserts Flows tuples against 1/2/4/8
// subscribed probe automata; ns/op tracks how commit+fan-out cost grows
// with the number of automata.
func BenchmarkFig9DelayVsAutomata(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("automata=%d", n), func(b *testing.B) { delayBench(b, n) })
	}
}

// BenchmarkFig10InsertPath is the Δt-independent cost of the insert path
// with the paper's four automata subscribed (Fig. 10 shows delay is flat
// across insertion rates; the per-insert cost here is that floor).
func BenchmarkFig10InsertPath(b *testing.B) {
	delayBench(b, 4)
}

// --- Figs. 12/13: RPC stress ---------------------------------------------

func stressBench(b *testing.B, intAttrs, strLen int, twoWay bool) {
	c, err := cache.New(cache.Config{
		TimerPeriod: -1,
		// The client tear-down races in-flight echoes; those send failures
		// are expected and must not spam stderr.
		OnRuntimeError: func(int64, error) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var create strings.Builder
	create.WriteString("create table Test (")
	if intAttrs > 0 {
		for i := 0; i < intAttrs; i++ {
			if i > 0 {
				create.WriteString(", ")
			}
			fmt.Fprintf(&create, "a%d integer", i)
		}
	} else {
		create.WriteString("s varchar")
	}
	create.WriteString(")")
	if _, err := c.Exec(create.String()); err != nil {
		b.Fatal(err)
	}
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	cl, err := rpc.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if _, err := cl.Register(experiments.StressProgram(twoWay)); err != nil {
		b.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range cl.Events() {
		}
	}()
	var vals []types.Value
	if intAttrs > 0 {
		for i := 0; i < intAttrs; i++ {
			vals = append(vals, types.Int(int64(i)))
		}
	} else {
		vals = append(vals, types.Str(strings.Repeat("x", strLen)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Insert("Test", vals...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = cl.Close()
	<-drained
}

// BenchmarkFig12IntegerStress is one RPC insert round trip per op, swept
// over the Test schema's integer attribute count, 1-way and 2-way.
func BenchmarkFig12IntegerStress(b *testing.B) {
	for _, way := range []string{"1way", "2way"} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/attrs=%d", way, n), func(b *testing.B) {
				stressBench(b, n, 0, way == "2way")
			})
		}
	}
}

// BenchmarkFig13StringStress sweeps the varchar payload size; the slope
// change past 1024 bytes is the RPC fragmentation boundary.
func BenchmarkFig13StringStress(b *testing.B) {
	for _, way := range []string{"1way", "2way"} {
		for _, n := range []int{10, 100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/bytes=%d", way, n), func(b *testing.B) {
				stressBench(b, 0, n, way == "2way")
			})
		}
	}
}

// --- Figs. 15/16: the frequent-items workload ----------------------------

// BenchmarkFig15ZipfTrace generates and ranks the full-size synthetic
// Homework HTTP trace.
func BenchmarkFig15ZipfTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig15(int64(i+1), workload.HTTPRequests, workload.HTTPHosts)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig16Frequent is per-event cost of the frequent algorithm,
// imperative (Fig. 14) vs built-in (§6.4), at the paper's k range.
func BenchmarkFig16Frequent(b *testing.B) {
	urls, err := types.NewSchema("Urls", false, -1,
		types.Column{Name: "host", Type: types.ColVarchar})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.HTTPTrace(3, 200_000, workload.HTTPHosts)
	for _, k := range []int{10, 100, 1000} {
		for _, variant := range []struct {
			name string
			src  string
		}{
			{"imperative", experiments.ProgFrequentImperative(k)},
			{"builtin", experiments.ProgFrequentBuiltin(k)},
		} {
			b.Run(fmt.Sprintf("%s/k=%d", variant.name, k), func(b *testing.B) {
				prog, err := gapl.Compile(variant.src)
				if err != nil {
					b.Fatal(err)
				}
				if err := prog.Bind(map[string]*types.Schema{"Urls": urls}); err != nil {
					b.Fatal(err)
				}
				m, err := vm.New(prog, &benchHost{})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.RunInit(); err != nil {
					b.Fatal(err)
				}
				ev := &types.Event{Topic: "Urls", Schema: urls,
					Tuple: &types.Tuple{Vals: []types.Value{types.Nil}}}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.Tuple.Vals[0] = types.Str(trace[i%len(trace)].Host)
					if err := m.Deliver(ev); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 18: Cache vs Cayuga --------------------------------------------

// BenchmarkFig18 measures per-event processing cost of each engine on each
// stock query over the paper-scale trace.
func BenchmarkFig18(b *testing.B) {
	trace := workload.StockTrace(workload.DefaultStockConfig(42))
	queries := []struct {
		name    string
		sources []string
		cayuga  func() *cayuga.Query
	}{
		{"Q1", []string{experiments.ProgQ1},
			func() *cayuga.Query { return cayuga.PassthroughQuery("Stocks", "T") }},
		{"Q2", []string{experiments.ProgQ2},
			func() *cayuga.Query { return cayuga.DoubleTopQuery("Stocks", "M") }},
		{"Q3", []string{experiments.ProgQ3Detector(2), experiments.ProgQ3Reporter},
			func() *cayuga.Query { return cayuga.RisingRunQuery("Stocks", "Runs", 2) }},
	}
	for _, q := range queries {
		b.Run(q.name+"/cache", func(b *testing.B) {
			rig := experiments.NewStockRig(b, q.sources)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := trace[i%len(trace)]
				if err := rig.Feed(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.name+"/cayuga", func(b *testing.B) {
			eng := cayuga.NewEngine()
			if err := eng.Register(q.cayuga()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Process(cayuga.StockEvent(trace[i%len(trace)]))
			}
		})
	}
}

// --- Batch commit pipeline ------------------------------------------------

// batchBenchCache builds a cache with one stream table T and subs drained
// no-op inboxes subscribed to it (the Fig. 9 fan-out shape), returning the
// cache and a stop function.
func batchBenchCache(b *testing.B, subs int) (*cache.Cache, func()) {
	b.Helper()
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec(`create table T (v integer)`); err != nil {
		b.Fatal(err)
	}
	inboxes := make([]*pubsub.Inbox, subs)
	for i := range inboxes {
		inboxes[i] = pubsub.NewInbox()
		if err := c.Subscribe(int64(i+1000), "T", inboxes[i]); err != nil {
			b.Fatal(err)
		}
		go func(in *pubsub.Inbox) {
			var buf []*types.Event
			for {
				batch, ok := in.PopBatch(0, buf)
				if !ok {
					return
				}
				buf = batch
			}
		}(inboxes[i])
	}
	return c, func() {
		for _, in := range inboxes {
			in.Close()
		}
		c.Close()
	}
}

func batchRows(batch int) [][]types.Value {
	rows := make([][]types.Value, batch)
	for i := range rows {
		rows[i] = []types.Value{types.Int(int64(i))}
	}
	return rows
}

// BenchmarkBatchInsert is the single-producer cost of the batch commit
// pipeline against 4 drained subscribers, swept over batch size. One op is
// one batch; the tuples/sec metric is the comparable number — batching
// amortises the commit mutex, sequence stamping and per-subscriber
// lock+signal over the run.
func BenchmarkBatchInsert(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := batchBenchCache(b, 4)
			defer stop()
			rows := batchRows(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.CommitBatch("T", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// BenchmarkBatchFanoutMultiProducer is the contended shape: GOMAXPROCS
// producer goroutines hammering one topic with 4 drained subscribers,
// contrasting batch sizes 1/16/256. The batch-first pipeline's win is
// largest here because the commit mutex is the global serialisation point.
func BenchmarkBatchFanoutMultiProducer(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := batchBenchCache(b, 4)
			defer stop()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rows := batchRows(batch)
				for pb.Next() {
					if err := c.CommitBatch("T", rows); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// BenchmarkBatchInsertRPC is the end-to-end RPC shape: client-side
// InsertBatch over TCP, one round trip per batch.
func BenchmarkBatchInsertRPC(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := batchBenchCache(b, 4)
			defer stop()
			srv := rpc.NewServer(c)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go func() { _ = srv.Serve(ln) }()
			defer func() { _ = srv.Close() }()
			cl, err := rpc.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = cl.Close() }()
			rows := batchRows(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.InsertBatch("T", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// stallSub emulates a slow synchronous consumer (a durability hook, a
// backpressured replica): each delivery parks for a fixed stall inside the
// topic lock. Under a global commit mutex that stall serialises every
// topic; under per-topic domains it costs only its own topic.
type stallSub struct{ stall time.Duration }

func (s *stallSub) Deliver(*types.Event)        { time.Sleep(s.stall) }
func (s *stallSub) DeliverBatch([]*types.Event) { time.Sleep(s.stall) }

// shardedCommitBench drives `producers` goroutines, each pinned to one of
// `topics` hot topics (2 drained subscribers per topic), committing batches
// until b.N commits have happened in aggregate. When globalMu is set every
// commit additionally serialises through one shared mutex, emulating the
// pre-shard design where a single commitMu covered every topic — that mode
// is the single-mutex baseline the sharded numbers are compared against.
// When stall > 0, topic 0 carries one stallSub subscriber plus four
// dedicated background producers (their commits are not counted in b.N):
// the reported tuples/sec is then the aggregate throughput of the OTHER
// topics while topic 0 is continuously stalled, which is the per-topic
// isolation the sharding exists to provide.
func shardedCommitBench(b *testing.B, topics, producers, batch int, globalMu bool, stall time.Duration) {
	b.Helper()
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, topics)
	var inboxes []*pubsub.Inbox
	for i := range names {
		names[i] = fmt.Sprintf("T%d", i)
		if _, err := c.Exec(fmt.Sprintf(`create table %s (v integer)`, names[i])); err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 2; s++ {
			in := pubsub.NewInbox()
			if err := c.Subscribe(int64(1000+i*2+s), names[i], in); err != nil {
				b.Fatal(err)
			}
			go func(in *pubsub.Inbox) {
				var buf []*types.Event
				for {
					batch, ok := in.PopBatch(0, buf)
					if !ok {
						return
					}
					buf = batch
				}
			}(in)
			inboxes = append(inboxes, in)
		}
	}
	var gmu sync.Mutex // the emulated pre-shard global commit mutex
	commit := func(name string, rows [][]types.Value) error {
		if globalMu {
			gmu.Lock()
			defer gmu.Unlock()
		}
		return c.CommitBatch(name, rows)
	}

	// The measured producers run over topics [first, topics); with a
	// stalled topic 0 they cover only the healthy topics, and a dedicated
	// background producer keeps topic 0's domain continuously stalled.
	first := 0
	stopSlow := make(chan struct{})
	slowDone := make(chan struct{})
	if stall > 0 {
		if topics < 2 {
			b.Fatal("slowsub load needs at least 2 topics")
		}
		first = 1
		if err := c.Subscribe(999, names[0], &stallSub{stall: stall}); err != nil {
			b.Fatal(err)
		}
		// Four producers keep the stalled topic continuously loaded (the
		// shape of several ingest connections feeding one slow stream).
		// Each signals after its first commit so the measurement starts
		// only once the stall regime is fully established — otherwise the
		// harness calibrates b.N against pre-collapse throughput and the
		// global-mode run takes minutes.
		const slowProducers = 4
		var slowWg, slowReady sync.WaitGroup
		slowRows := batchRows(batch)
		for i := 0; i < slowProducers; i++ {
			slowWg.Add(1)
			slowReady.Add(1)
			go func() {
				defer slowWg.Done()
				first := true
				for {
					select {
					case <-stopSlow:
						if first {
							slowReady.Done()
						}
						return
					default:
					}
					if err := commit(names[0], slowRows); err != nil {
						b.Error(err)
						if first {
							slowReady.Done()
						}
						return
					}
					if first {
						first = false
						slowReady.Done()
					}
				}
			}()
		}
		go func() { slowWg.Wait(); close(slowDone) }()
		slowReady.Wait()
	} else {
		close(slowDone)
	}
	defer func() {
		close(stopSlow)
		<-slowDone
		for _, in := range inboxes {
			in.Close()
		}
		c.Close()
	}()

	var next atomic.Int64
	rows := batchRows(batch)
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			name := names[first+p%(topics-first)]
			for next.Add(1) <= int64(b.N) {
				if err := commit(name, rows); err != nil {
					b.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	b.StopTimer()
	tuples := float64(b.N) * float64(batch)
	b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
}

// BenchmarkShardedCommitMultiTopic measures what sharding the commit path
// into per-topic domains buys: aggregate tuples/sec across 1/4/8 hot
// topics, sharded versus the emulated single-mutex baseline (mode=global).
// With one topic the two modes are equivalent by construction — one domain
// is one mutex — so the interesting rows are topics>=4.
//
// Two load shapes:
//
//   - load=uniform: all topics commit pure CPU-bound batches. The sharded
//     win here is parallel commit across cores; on a single-core machine
//     the two modes are within noise because a lone CPU serialises the
//     work no matter how the locks are carved up.
//   - load=slowsub: topic 0 carries a slow synchronous subscriber (2ms
//     per delivery — an fsync-class durability hook or a backpressured
//     consumer) and four producers of its own keeping it loaded. Under the
//     global mutex those stalls hold the one lock every topic needs, and
//     aggregate throughput collapses to the slow topic's rate; sharded,
//     the healthy topics commit at full speed through it. This is the
//     dominant practical win and it shows on any core count.
//
// Uniform-load contention only exists with parallelism, so the benchmark
// raises GOMAXPROCS to at least 4 for its duration on smaller machines.
func BenchmarkShardedCommitMultiTopic(b *testing.B) {
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const producers = 8
	for _, mode := range []string{"global", "sharded"} {
		for _, topics := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("load=uniform/mode=%s/topics=%d", mode, topics), func(b *testing.B) {
				shardedCommitBench(b, topics, producers, 16, mode == "global", 0)
			})
		}
		for _, topics := range []int{4, 8} {
			b.Run(fmt.Sprintf("load=slowsub/mode=%s/topics=%d", mode, topics), func(b *testing.B) {
				shardedCommitBench(b, topics, producers, 16, mode == "global", 2*time.Millisecond)
			})
		}
	}
}

// BenchmarkAsyncDeliverySlowTap measures what the asynchronous delivery
// pipeline buys on one topic: commit throughput with a 2ms-per-event tap
// attached, versus the no-tap baseline. Three tap modes:
//
//   - tap=none: baseline, two drained inbox subscribers only.
//   - tap=sync: the pre-PR3 shape — a subscriber that sleeps 2ms inside
//     Deliver, executing under the topic lock. Throughput collapses to the
//     tap's rate (~300x at batch 16).
//   - tap=drop: WatchWith under DropOldest (queue 1024). The tap sheds
//     what it cannot keep up with; commit throughput must stay within 2x
//     of tap=none.
//
// Block is deliberately absent: with a 2ms tap it runs at full speed
// exactly until the queue fills and then at the tap's rate forever after —
// that conversion of overflow into backpressure is its contract, but it
// makes a fixed-iteration benchmark report whichever regime calibration
// happened to land in (and a run-sized queue just pins the whole run's
// events). TestWatchBlockPolicyBackpressure pins the Block semantics
// instead.
func BenchmarkAsyncDeliverySlowTap(b *testing.B) {
	const batch = 16
	const stall = 2 * time.Millisecond
	for _, mode := range []string{"none", "sync", "drop"} {
		b.Run("tap="+mode, func(b *testing.B) {
			c, stop := batchBenchCache(b, 2)
			defer stop()
			switch mode {
			case "sync":
				if err := c.Subscribe(999, "T", &stallSub{stall: stall}); err != nil {
					b.Fatal(err)
				}
			case "drop":
				id, err := c.WatchWith("T", func(*types.Event) { time.Sleep(stall) },
					cache.WatchOpts{Queue: 1024, Policy: pubsub.DropOldest})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Unsubscribe(id)
			}
			rows := batchRows(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.CommitBatch("T", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// BenchmarkBatchActivationWindowedAggregate measures what batch activation
// buys a windowed-aggregate automaton: the same moving-average computation
// written per-event (append + winAvg once per event — one interpreter
// activation each) versus batchable (appendRun + winAvg once per drained
// run). Each op commits one batch of run-length events and waits for the
// automaton to drain it, so the delivered run length equals the commit
// batch size exactly; compare events/sec across modes at each run length.
// At run=1 the two modes do identical work (a batchable behaviour over a
// one-event run IS a per-event activation); the batch win grows with the
// run because interpreter dispatch, window eviction and the aggregate
// recompute happen once per run instead of once per event.
func BenchmarkBatchActivationWindowedAggregate(b *testing.B) {
	progs := map[string]string{
		"perevent": `
subscribe e to T;
window w;
real a;
initialization { w = Window(int, ROWS, 64); }
behavior {
	append(w, e.v);
	a = winAvg(w);
}
`,
		"batch": `
subscribe e to T;
window w;
real a;
initialization { w = Window(int, ROWS, 64); }
behavior {
	appendRun(w, e.v);
	a = winAvg(w);
}
`,
	}
	for _, runLen := range []int{1, 16, 256} {
		for _, mode := range []string{"perevent", "batch"} {
			b.Run(fmt.Sprintf("run=%d/mode=%s", runLen, mode), func(b *testing.B) {
				c, err := cache.New(cache.Config{TimerPeriod: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if _, err := c.Exec(`create table T (v integer)`); err != nil {
					b.Fatal(err)
				}
				a, err := c.Register(progs[mode], automaton.DiscardSink)
				if err != nil {
					b.Fatal(err)
				}
				if a.Batchable() != (mode == "batch") {
					b.Fatalf("mode %s misclassified: Batchable() = %v", mode, a.Batchable())
				}
				rows := batchRows(runLen)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.CommitBatch("T", rows); err != nil {
						b.Fatal(err)
					}
					// Lockstep: drain before the next commit so every run
					// the dispatcher pops is exactly runLen events.
					for !a.Idle() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				events := float64(b.N) * float64(runLen)
				b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/events, "ns/event")
			})
		}
	}
}

// patternProg builds a single-topic sequence pattern of the given depth:
// depth subscription variables over T, correlated on the key column, with
// skip-till-next-match keeping at most one open partial per key per step.
func patternProg(depth int) string {
	var sb strings.Builder
	for i := 1; i <= depth; i++ {
		fmt.Fprintf(&sb, "subscribe s%d to T;\n", i)
	}
	sb.WriteString("pattern {\n\tmatch s1")
	for i := 2; i <= depth; i++ {
		fmt.Fprintf(&sb, " then s%d", i)
	}
	sb.WriteString(" within 3600 SECS;\n")
	if depth > 1 {
		sb.WriteString("\twhere s2.k == s1.k")
		for i := 3; i <= depth; i++ {
			fmt.Fprintf(&sb, " && s%d.k == s1.k", i)
		}
		sb.WriteString(";\n")
	}
	sb.WriteString("\temit s1.k, s1.v;\n}\n")
	return sb.String()
}

// BenchmarkPatternMatch is the cost of the CEP NFA on the batch activation
// path (PR 9): a sequence pattern of swept depth over a single topic,
// driven with commit batches of swept run length. Single-topic patterns
// self-advance their watermark, so the measured path is the full
// reorder-buffer + NFA-step pipeline with no timer involvement. Keys
// round-robin over 32 values, so skip-till-next-match holds the open
// partial-match population at a steady ~32×depth.
func BenchmarkPatternMatch(b *testing.B) {
	const keys = 32
	for _, depth := range []int{2, 4} {
		prog := patternProg(depth)
		for _, runLen := range []int{64, 256} {
			b.Run(fmt.Sprintf("depth=%d/run=%d", depth, runLen), func(b *testing.B) {
				c, err := cache.New(cache.Config{TimerPeriod: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if _, err := c.Exec(`create table T (k integer, v integer)`); err != nil {
					b.Fatal(err)
				}
				a, err := c.Register(prog, automaton.DiscardSink)
				if err != nil {
					b.Fatal(err)
				}
				if !a.Batchable() {
					b.Fatal("pattern automaton not on the batch path")
				}
				rows := make([][]types.Value, runLen)
				for i := range rows {
					rows[i] = []types.Value{
						types.Int(int64(i % keys)), types.Int(int64(i)),
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.CommitBatch("T", rows); err != nil {
						b.Fatal(err)
					}
					// Lockstep with the dispatcher, as the activation
					// bench does, so runs have a fixed length.
					for !a.Idle() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				events := float64(b.N) * float64(runLen)
				b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/events, "ns/event")
				b.ReportMetric(float64(a.Matches())/float64(b.N), "matches/op")
			})
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationVMInstructionCycle measures the stack machine's
// instruction cycle (the paper's §6.1 observation that their interpreter
// behaves like a ~3µs-per-instruction processor; ours is reported here).
func BenchmarkAblationVMInstructionCycle(b *testing.B) {
	m, ev := benchVM(b, `
subscribe t to Timer;
int i, limit;
initialization { limit = 1000; }
behavior {
	i = 0;
	while (i < limit) {
		i += 1;
	}
}
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Deliver(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// ~9 instructions per loop iteration, 1000 iterations per delivery.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/9000.0, "ns/instr")
}

// BenchmarkAblationCommitFanout isolates the commit path: one insert
// against 0..8 subscribed no-op inboxes (the cost Fig. 9's linear growth
// comes from).
func BenchmarkAblationCommitFanout(b *testing.B) {
	for _, subs := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			c, err := cache.New(cache.Config{TimerPeriod: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Exec(`create table T (v integer)`); err != nil {
				b.Fatal(err)
			}
			inboxes := make([]*pubsub.Inbox, subs)
			for i := range inboxes {
				inboxes[i] = pubsub.NewInbox()
				if err := c.Subscribe(int64(i+1000), "T", inboxes[i]); err != nil {
					b.Fatal(err)
				}
				// Drain each inbox so queues stay flat.
				go func(in *pubsub.Inbox) {
					for {
						if _, ok := in.Pop(); !ok {
							return
						}
					}
				}(inboxes[i])
			}
			vals := []types.Value{types.Int(1)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("T", vals...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, in := range inboxes {
				in.Close()
			}
		})
	}
}

// BenchmarkAblationInbox is the raw unbounded-FIFO push/pop pair the
// delivery path rides on.
func BenchmarkAblationInbox(b *testing.B) {
	in := pubsub.NewInbox()
	ev := &types.Event{Topic: "T", Tuple: &types.Tuple{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Deliver(ev)
		if _, ok := in.TryPop(); !ok {
			b.Fatal("lost event")
		}
	}
}

// BenchmarkAblationOrderedMap compares the insertion-ordered GAPL map
// against a plain Go map (the determinism tax DESIGN.md accepts).
func BenchmarkAblationOrderedMap(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
	}
	b.Run("gapl-ordered", func(b *testing.B) {
		m := types.NewMap(types.KindInt)
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			_ = m.Insert(k, types.Int(int64(i)))
			if _, ok := m.Lookup(k); !ok {
				b.Fatal("lost key")
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		m := make(map[string]types.Value, len(keys))
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			m[k] = types.Int(int64(i))
			if _, ok := m[k]; !ok {
				b.Fatal("lost key")
			}
		}
	})
}

// --- Façade load path, event pooling and streaming loads ------------------

// facadeBenchEngine builds an Engine on the requested backend — the same
// two shapes cmd/loadgen drives, reduced to a benchmark fixture. The
// remote backend is a real server on a TCP loopback listener, so its rows
// carry the whole RPC stack.
func facadeBenchEngine(b *testing.B, backend string, cfg Config) (Engine, func()) {
	b.Helper()
	if backend == "embedded" {
		e, err := NewEmbedded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return e, func() { _ = e.Close() }
	}
	c, err := cache.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	eng, err := DialRemote(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	return eng, func() {
		_ = eng.Close()
		_ = srv.Close()
		c.Close()
	}
}

// BenchmarkFacadeInsertBatch drives 64-row batches through the public
// Engine API on each backend, with event pooling off and on — the
// before/after of the zero-allocation hot path. allocs/op divided by 64
// is allocs/event; TestSteadyStateInsertAllocFree gates the pooled
// embedded figure at exactly zero.
func BenchmarkFacadeInsertBatch(b *testing.B) {
	for _, backend := range []string{"embedded", "remote"} {
		for _, pool := range []bool{false, true} {
			b.Run(fmt.Sprintf("backend=%s/pool=%v", backend, pool), func(b *testing.B) {
				eng, stop := facadeBenchEngine(b, backend,
					Config{TimerPeriod: -1, PoolEvents: pool, EphemeralCapacity: 256})
				defer stop()
				if _, err := eng.Exec(`create table T (src integer, v integer)`); err != nil {
					b.Fatal(err)
				}
				const batch = 64
				rows := make([][]Value, batch)
				vals := make([]Value, 2*batch)
				for i := range rows {
					rows[i] = vals[2*i : 2*i+2]
					rows[i][0] = types.Int(int64(i))
					rows[i][1] = types.Int(int64(i))
				}
				// Warm past the ring so pooled blocks recycle before the
				// measured window.
				for i := 0; i < 8; i++ {
					if err := eng.InsertBatch("T", rows); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.InsertBatch("T", rows); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				events := float64(b.N) * batch
				b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkStreamLoad pours 4096 rows per op into a server over loopback
// TCP two ways: per-batch InsertBatch calls of 64 rows (one round trip
// each) versus one insert stream shipping the same rows as fire-and-forget
// chunks (two round trips total). Loopback hides most of the latency win —
// TestStreamBeatsPerBatchRTT pins the >=2x gap under a real 2ms RTT — but
// the round-trip count still shows.
func BenchmarkStreamLoad(b *testing.B) {
	const rowsPerOp, perBatch = 4096, 64
	for _, mode := range []string{"perbatch", "stream"} {
		b.Run("mode="+mode, func(b *testing.B) {
			c, err := cache.New(cache.Config{TimerPeriod: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Exec(`create table L (s varchar)`); err != nil {
				b.Fatal(err)
			}
			srv := rpc.NewServer(c)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go func() { _ = srv.Serve(ln) }()
			defer func() { _ = srv.Close() }()
			cl, err := rpc.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = cl.Close() }()
			payload := types.Str(strings.Repeat("x", 256))
			batch := make([][]types.Value, perBatch)
			for i := range batch {
				batch[i] = []types.Value{payload}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch mode {
				case "perbatch":
					for sent := 0; sent < rowsPerOp; sent += perBatch {
						if err := cl.InsertBatch("L", batch); err != nil {
							b.Fatal(err)
						}
					}
				case "stream":
					st, err := cl.NewInsertStream("L")
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < rowsPerOp; j++ {
						if err := st.Add(payload); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := st.Close(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			rows := float64(b.N) * rowsPerOp
			b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkAblationRingCapacity sweeps the ephemeral ring size; insert
// cost should be flat (the ring is why lookups stay O(1) regardless of
// history length).
func BenchmarkAblationRingCapacity(b *testing.B) {
	for _, capacity := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			c, err := cache.New(cache.Config{TimerPeriod: -1, EphemeralCapacity: capacity})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Exec(`create table T (v integer)`); err != nil {
				b.Fatal(err)
			}
			vals := []types.Value{types.Int(1)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("T", vals...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALCommit measures what durability costs on the commit path:
// the identical batch commit against an in-memory cache, a write-ahead
// log with group-commit fsync, and a WAL with fsync off, swept over batch
// size. The group-commit comparison is the interesting one — at batch 1
// every commit pays (a share of) an fsync, so batching amortises both the
// commit mutex and the disk barrier.
func BenchmarkWALCommit(b *testing.B) {
	modes := []struct {
		name            string
		durable, nosync bool
	}{
		{"memory", false, false},
		{"wal", true, false},
		{"wal-nosync", true, true},
	}
	for _, m := range modes {
		for _, batch := range []int{1, 64, 256} {
			b.Run(fmt.Sprintf("%s/batch=%d", m.name, batch), func(b *testing.B) {
				cfg := cache.Config{TimerPeriod: -1, PrintWriter: &strings.Builder{}}
				if m.durable {
					cfg.DataDir = b.TempDir()
					cfg.WALNoSync = m.nosync
				}
				c, err := cache.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if _, err := c.Exec(`create table T (v integer)`); err != nil {
					b.Fatal(err)
				}
				rows := batchRows(batch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.CommitBatch("T", rows); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				tuples := float64(b.N) * float64(batch)
				b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
				if dur, ok := c.Durability(); ok {
					b.ReportMetric(float64(dur.Fsyncs)/float64(b.N), "fsyncs/op")
				}
			})
		}
	}
}

// BenchmarkWALCommitGroup is the group-commit payoff: GOMAXPROCS
// producers committing durably to one topic. Concurrent committers share
// fsync barriers (the sync leader flushes everyone's bytes), so
// fsyncs/op drops well below 1 while every committer still gets a
// durable ack.
func BenchmarkWALCommitGroup(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			cfg := cache.Config{
				TimerPeriod: -1,
				PrintWriter: &strings.Builder{},
				DataDir:     b.TempDir(),
			}
			c, err := cache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Exec(`create table T (v integer)`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rows := batchRows(batch)
				for pb.Next() {
					if err := c.CommitBatch("T", rows); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			if dur, ok := c.Durability(); ok {
				b.ReportMetric(float64(dur.Fsyncs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}
