// Benchmarks regenerating the paper's evaluation (§6), one bench per
// measured table/figure, plus ablations of the design decisions DESIGN.md
// calls out. cmd/benchrunner prints the same experiments in the paper's
// row/series form; these testing.B targets expose them to `go test -bench`.
package unicache

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/cache"
	"unicache/internal/cayuga"
	"unicache/internal/experiments"
	"unicache/internal/gapl"
	"unicache/internal/pubsub"
	"unicache/internal/rpc"
	"unicache/internal/types"
	"unicache/internal/vm"
	"unicache/internal/workload"
)

// --- Fig. 7: cost of built-in functions ---------------------------------

// benchHost is a no-op vm.Host for microbenchmarks.
type benchHost struct {
	clock types.Timestamp
	sunk  int
}

func (h *benchHost) Now() types.Timestamp { h.clock++; return h.clock }
func (h *benchHost) Publish(string, []types.Value) error {
	h.sunk++
	return nil
}
func (h *benchHost) Send([]types.Value) error { h.sunk++; return nil }
func (h *benchHost) Print(string)             {}
func (h *benchHost) AssocLookup(string, string) (types.Value, bool, error) {
	return types.Nil, false, nil
}
func (h *benchHost) AssocInsert(string, string, types.Value) error { return nil }
func (h *benchHost) AssocHas(string, string) (bool, error)         { return false, nil }
func (h *benchHost) AssocRemove(string, string) (bool, error)      { return false, nil }
func (h *benchHost) AssocSize(string) (int, error)                 { return 0, nil }

func benchVM(b *testing.B, src string) (*vm.VM, *types.Event) {
	b.Helper()
	timer, err := types.NewSchema("Timer", false, -1,
		types.Column{Name: "ts", Type: types.ColTstamp})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := gapl.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := prog.Bind(map[string]*types.Schema{"Timer": timer}); err != nil {
		b.Fatal(err)
	}
	m, err := vm.New(prog, &benchHost{})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.RunInit(); err != nil {
		b.Fatal(err)
	}
	ev := &types.Event{Topic: "Timer", Schema: timer,
		Tuple: &types.Tuple{Seq: 1, TS: 1, Vals: []types.Value{types.Stamp(1)}}}
	return m, ev
}

// BenchmarkFig7Builtins times one invocation of each measured built-in per
// behaviour execution (the Fig. 6 template with limit = 1).
func BenchmarkFig7Builtins(b *testing.B) {
	for _, bc := range experiments.BuiltinCostCases(1) {
		b.Run(bc.Name, func(b *testing.B) {
			var src strings.Builder
			src.WriteString("subscribe t to Timer;\nint i;\n")
			if bc.Decl != "" {
				src.WriteString(bc.Decl + "\n")
			}
			if bc.Init != "" {
				src.WriteString("initialization {\n" + bc.Init + "\n}\n")
			}
			src.WriteString("behavior {\n")
			if bc.Call != "" {
				src.WriteString(bc.Call + "\n")
			}
			src.WriteString("i += 1;\n}\n")
			m, ev := benchVM(b, src.String())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Deliver(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs. 9/10: delay at scale ------------------------------------------

func delayBench(b *testing.B, automata int) {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create table Flows (protocol integer, srcip varchar(16), sport integer,
		dstip varchar(16), dport integer, npkts integer, nbytes integer)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < automata; i++ {
		src := experiments.DelayProbeProgram(fmt.Sprintf("A%d", i), 1<<30)
		if _, err := c.Register(src, automaton.DiscardSink); err != nil {
			b.Fatal(err)
		}
	}
	vals := []types.Value{
		types.Int(6), types.Str("10.0.0.1"), types.Int(1234),
		types.Str("192.168.1.1"), types.Int(80), types.Int(10), types.Int(1500),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert("Flows", vals...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !c.Registry().WaitIdle(time.Minute) {
		b.Fatal("automata did not quiesce")
	}
}

// BenchmarkFig9DelayVsAutomata inserts Flows tuples against 1/2/4/8
// subscribed probe automata; ns/op tracks how commit+fan-out cost grows
// with the number of automata.
func BenchmarkFig9DelayVsAutomata(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("automata=%d", n), func(b *testing.B) { delayBench(b, n) })
	}
}

// BenchmarkFig10InsertPath is the Δt-independent cost of the insert path
// with the paper's four automata subscribed (Fig. 10 shows delay is flat
// across insertion rates; the per-insert cost here is that floor).
func BenchmarkFig10InsertPath(b *testing.B) {
	delayBench(b, 4)
}

// --- Figs. 12/13: RPC stress ---------------------------------------------

func stressBench(b *testing.B, intAttrs, strLen int, twoWay bool) {
	c, err := cache.New(cache.Config{
		TimerPeriod: -1,
		// The client tear-down races in-flight echoes; those send failures
		// are expected and must not spam stderr.
		OnRuntimeError: func(int64, error) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var create strings.Builder
	create.WriteString("create table Test (")
	if intAttrs > 0 {
		for i := 0; i < intAttrs; i++ {
			if i > 0 {
				create.WriteString(", ")
			}
			fmt.Fprintf(&create, "a%d integer", i)
		}
	} else {
		create.WriteString("s varchar")
	}
	create.WriteString(")")
	if _, err := c.Exec(create.String()); err != nil {
		b.Fatal(err)
	}
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	cl, err := rpc.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if _, err := cl.Register(experiments.StressProgram(twoWay)); err != nil {
		b.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range cl.Events() {
		}
	}()
	var vals []types.Value
	if intAttrs > 0 {
		for i := 0; i < intAttrs; i++ {
			vals = append(vals, types.Int(int64(i)))
		}
	} else {
		vals = append(vals, types.Str(strings.Repeat("x", strLen)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Insert("Test", vals...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = cl.Close()
	<-drained
}

// BenchmarkFig12IntegerStress is one RPC insert round trip per op, swept
// over the Test schema's integer attribute count, 1-way and 2-way.
func BenchmarkFig12IntegerStress(b *testing.B) {
	for _, way := range []string{"1way", "2way"} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/attrs=%d", way, n), func(b *testing.B) {
				stressBench(b, n, 0, way == "2way")
			})
		}
	}
}

// BenchmarkFig13StringStress sweeps the varchar payload size; the slope
// change past 1024 bytes is the RPC fragmentation boundary.
func BenchmarkFig13StringStress(b *testing.B) {
	for _, way := range []string{"1way", "2way"} {
		for _, n := range []int{10, 100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/bytes=%d", way, n), func(b *testing.B) {
				stressBench(b, 0, n, way == "2way")
			})
		}
	}
}

// --- Figs. 15/16: the frequent-items workload ----------------------------

// BenchmarkFig15ZipfTrace generates and ranks the full-size synthetic
// Homework HTTP trace.
func BenchmarkFig15ZipfTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig15(int64(i+1), workload.HTTPRequests, workload.HTTPHosts)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig16Frequent is per-event cost of the frequent algorithm,
// imperative (Fig. 14) vs built-in (§6.4), at the paper's k range.
func BenchmarkFig16Frequent(b *testing.B) {
	urls, err := types.NewSchema("Urls", false, -1,
		types.Column{Name: "host", Type: types.ColVarchar})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.HTTPTrace(3, 200_000, workload.HTTPHosts)
	for _, k := range []int{10, 100, 1000} {
		for _, variant := range []struct {
			name string
			src  string
		}{
			{"imperative", experiments.ProgFrequentImperative(k)},
			{"builtin", experiments.ProgFrequentBuiltin(k)},
		} {
			b.Run(fmt.Sprintf("%s/k=%d", variant.name, k), func(b *testing.B) {
				prog, err := gapl.Compile(variant.src)
				if err != nil {
					b.Fatal(err)
				}
				if err := prog.Bind(map[string]*types.Schema{"Urls": urls}); err != nil {
					b.Fatal(err)
				}
				m, err := vm.New(prog, &benchHost{})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.RunInit(); err != nil {
					b.Fatal(err)
				}
				ev := &types.Event{Topic: "Urls", Schema: urls,
					Tuple: &types.Tuple{Vals: []types.Value{types.Nil}}}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.Tuple.Vals[0] = types.Str(trace[i%len(trace)].Host)
					if err := m.Deliver(ev); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 18: Cache vs Cayuga --------------------------------------------

// BenchmarkFig18 measures per-event processing cost of each engine on each
// stock query over the paper-scale trace.
func BenchmarkFig18(b *testing.B) {
	trace := workload.StockTrace(workload.DefaultStockConfig(42))
	queries := []struct {
		name    string
		sources []string
		cayuga  func() *cayuga.Query
	}{
		{"Q1", []string{experiments.ProgQ1},
			func() *cayuga.Query { return cayuga.PassthroughQuery("Stocks", "T") }},
		{"Q2", []string{experiments.ProgQ2},
			func() *cayuga.Query { return cayuga.DoubleTopQuery("Stocks", "M") }},
		{"Q3", []string{experiments.ProgQ3Detector(2), experiments.ProgQ3Reporter},
			func() *cayuga.Query { return cayuga.RisingRunQuery("Stocks", "Runs", 2) }},
	}
	for _, q := range queries {
		b.Run(q.name+"/cache", func(b *testing.B) {
			rig := experiments.NewStockRig(b, q.sources)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := trace[i%len(trace)]
				if err := rig.Feed(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.name+"/cayuga", func(b *testing.B) {
			eng := cayuga.NewEngine()
			if err := eng.Register(q.cayuga()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Process(cayuga.StockEvent(trace[i%len(trace)]))
			}
		})
	}
}

// --- Batch commit pipeline ------------------------------------------------

// batchBenchCache builds a cache with one stream table T and subs drained
// no-op inboxes subscribed to it (the Fig. 9 fan-out shape), returning the
// cache and a stop function.
func batchBenchCache(b *testing.B, subs int) (*cache.Cache, func()) {
	b.Helper()
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec(`create table T (v integer)`); err != nil {
		b.Fatal(err)
	}
	inboxes := make([]*pubsub.Inbox, subs)
	for i := range inboxes {
		inboxes[i] = pubsub.NewInbox()
		if err := c.Subscribe(int64(i+1000), "T", inboxes[i]); err != nil {
			b.Fatal(err)
		}
		go func(in *pubsub.Inbox) {
			var buf []*types.Event
			for {
				batch, ok := in.PopBatch(0, buf)
				if !ok {
					return
				}
				buf = batch
			}
		}(inboxes[i])
	}
	return c, func() {
		for _, in := range inboxes {
			in.Close()
		}
		c.Close()
	}
}

func batchRows(batch int) [][]types.Value {
	rows := make([][]types.Value, batch)
	for i := range rows {
		rows[i] = []types.Value{types.Int(int64(i))}
	}
	return rows
}

// BenchmarkBatchInsert is the single-producer cost of the batch commit
// pipeline against 4 drained subscribers, swept over batch size. One op is
// one batch; the tuples/sec metric is the comparable number — batching
// amortises the commit mutex, sequence stamping and per-subscriber
// lock+signal over the run.
func BenchmarkBatchInsert(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := batchBenchCache(b, 4)
			defer stop()
			rows := batchRows(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.CommitBatch("T", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// BenchmarkBatchFanoutMultiProducer is the contended shape: GOMAXPROCS
// producer goroutines hammering one topic with 4 drained subscribers,
// contrasting batch sizes 1/16/256. The batch-first pipeline's win is
// largest here because the commit mutex is the global serialisation point.
func BenchmarkBatchFanoutMultiProducer(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := batchBenchCache(b, 4)
			defer stop()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rows := batchRows(batch)
				for pb.Next() {
					if err := c.CommitBatch("T", rows); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// BenchmarkBatchInsertRPC is the end-to-end RPC shape: client-side
// InsertBatch over TCP, one round trip per batch.
func BenchmarkBatchInsertRPC(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := batchBenchCache(b, 4)
			defer stop()
			srv := rpc.NewServer(c)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go func() { _ = srv.Serve(ln) }()
			defer func() { _ = srv.Close() }()
			cl, err := rpc.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = cl.Close() }()
			rows := batchRows(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.InsertBatch("T", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tuples := float64(b.N) * float64(batch)
			b.ReportMetric(tuples/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/tuples, "ns/tuple")
		})
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationVMInstructionCycle measures the stack machine's
// instruction cycle (the paper's §6.1 observation that their interpreter
// behaves like a ~3µs-per-instruction processor; ours is reported here).
func BenchmarkAblationVMInstructionCycle(b *testing.B) {
	m, ev := benchVM(b, `
subscribe t to Timer;
int i, limit;
initialization { limit = 1000; }
behavior {
	i = 0;
	while (i < limit) {
		i += 1;
	}
}
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Deliver(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// ~9 instructions per loop iteration, 1000 iterations per delivery.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/9000.0, "ns/instr")
}

// BenchmarkAblationCommitFanout isolates the commit path: one insert
// against 0..8 subscribed no-op inboxes (the cost Fig. 9's linear growth
// comes from).
func BenchmarkAblationCommitFanout(b *testing.B) {
	for _, subs := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			c, err := cache.New(cache.Config{TimerPeriod: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Exec(`create table T (v integer)`); err != nil {
				b.Fatal(err)
			}
			inboxes := make([]*pubsub.Inbox, subs)
			for i := range inboxes {
				inboxes[i] = pubsub.NewInbox()
				if err := c.Subscribe(int64(i+1000), "T", inboxes[i]); err != nil {
					b.Fatal(err)
				}
				// Drain each inbox so queues stay flat.
				go func(in *pubsub.Inbox) {
					for {
						if _, ok := in.Pop(); !ok {
							return
						}
					}
				}(inboxes[i])
			}
			vals := []types.Value{types.Int(1)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("T", vals...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, in := range inboxes {
				in.Close()
			}
		})
	}
}

// BenchmarkAblationInbox is the raw unbounded-FIFO push/pop pair the
// delivery path rides on.
func BenchmarkAblationInbox(b *testing.B) {
	in := pubsub.NewInbox()
	ev := &types.Event{Topic: "T", Tuple: &types.Tuple{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Deliver(ev)
		if _, ok := in.TryPop(); !ok {
			b.Fatal("lost event")
		}
	}
}

// BenchmarkAblationOrderedMap compares the insertion-ordered GAPL map
// against a plain Go map (the determinism tax DESIGN.md accepts).
func BenchmarkAblationOrderedMap(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
	}
	b.Run("gapl-ordered", func(b *testing.B) {
		m := types.NewMap(types.KindInt)
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			_ = m.Insert(k, types.Int(int64(i)))
			if _, ok := m.Lookup(k); !ok {
				b.Fatal("lost key")
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		m := make(map[string]types.Value, len(keys))
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			m[k] = types.Int(int64(i))
			if _, ok := m[k]; !ok {
				b.Fatal("lost key")
			}
		}
	})
}

// BenchmarkAblationRingCapacity sweeps the ephemeral ring size; insert
// cost should be flat (the ring is why lookups stay O(1) regardless of
// history length).
func BenchmarkAblationRingCapacity(b *testing.B) {
	for _, capacity := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			c, err := cache.New(cache.Config{TimerPeriod: -1, EphemeralCapacity: capacity})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Exec(`create table T (v integer)`); err != nil {
				b.Fatal(err)
			}
			vals := []types.Value{types.Int(1)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("T", vals...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
