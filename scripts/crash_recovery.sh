#!/usr/bin/env bash
# CI gate for the durability path: build the daemon, the CLI and the
# crashtest driver, then SIGKILL a cached server in the middle of a
# `cachectl load` stream and prove restart recovers exactly the acked
# prefix and converges back to a crash-free control run. See
# cmd/crashtest for what is asserted. CRASHTEST_SEED pins the kill point
# for reproduction; by default each run picks a fresh random one.
set -eu

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/cached" ./cmd/cached
go build -o "$DIR/cachectl" ./cmd/cachectl
go build -o "$DIR/crashtest" ./cmd/crashtest

"$DIR/crashtest" \
	-cached "$DIR/cached" \
	-cachectl "$DIR/cachectl" \
	-rows "${CRASHTEST_ROWS:-100000}" \
	-seed "${CRASHTEST_SEED:-0}"
