#!/usr/bin/env bash
# CI gate for multi-tenancy on a real deployment: spawn one cached with
# a two-tenant tenants.json, then prove over the wire that (1) auth is
# mandatory and wrong tokens are refused, (2) the tenants' namespaces
# are disjoint — identical logical table names coexist and neither side
# sees the other's tables or rows, (3) the events/sec quota refuses an
# oversized batch with a quota error while the unquota'd tenant sails
# through, and (4) per-tenant accounting reaches cachectl. The same
# properties are pinned in-process by tenancy_test.go; this script
# guards the cached/cachectl binaries and the tenants.json loading path.
set -eu

ADDR="127.0.0.1:7913"
DIR="$(mktemp -d)"
trap 'kill "$CACHED_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/cached" ./cmd/cached
go build -o "$DIR/cachectl" ./cmd/cachectl

cat >"$DIR/tenants.json" <<'EOF'
{"tenants": [
  {"name": "acme",  "token": "tok-acme",
   "quota": {"max_tables": 4, "max_events_per_sec": 8}},
  {"name": "bravo", "token": "tok-bravo"}
]}
EOF

"$DIR/cached" -addr "$ADDR" -timer 0 -tenants "$DIR/tenants.json" \
	>"$DIR/cached.log" 2>&1 &
CACHED_PID=$!

ctl() { # ctl <token> <args...>
	local tok="$1"
	shift
	"$DIR/cachectl" -addr "$ADDR" -token "$tok" "$@"
}

# Wait for the server to accept connections (ping is the one pre-auth op).
for i in $(seq 1 50); do
	if "$DIR/cachectl" -addr "$ADDR" -token tok-acme ping >/dev/null 2>&1; then
		break
	fi
	if [ "$i" -eq 50 ]; then
		echo "cached did not come up" >&2
		cat "$DIR/cached.log" >&2
		exit 1
	fi
	sleep 0.1
done

# Auth is mandatory: no token and a wrong token are both refused.
if "$DIR/cachectl" -addr "$ADDR" exec "show tables" >/dev/null 2>&1; then
	echo "smoke_tenant: tokenless connection was served" >&2
	exit 1
fi
if ctl tok-wrong exec "show tables" >/dev/null 2>&1; then
	echo "smoke_tenant: wrong token was accepted" >&2
	exit 1
fi

# Disjoint namespaces: the same logical name on both sides, plus a
# bravo-only table acme must not see or read.
ctl tok-acme exec "create table Flows (src varchar, bytes integer)" >/dev/null
ctl tok-bravo exec "create table Flows (src varchar, bytes integer)" >/dev/null
ctl tok-bravo exec "create table Secret (v integer)" >/dev/null
ctl tok-acme exec "insert into Flows values ('a', 1)" >/dev/null
ctl tok-bravo exec "insert into Flows values ('b', 2)" >/dev/null
ctl tok-bravo exec "insert into Flows values ('b', 3)" >/dev/null

acme_tables=$(ctl tok-acme exec "show tables")
echo "$acme_tables" | grep -q "Flows" || {
	echo "smoke_tenant: acme lost its own table" >&2
	exit 1
}
if echo "$acme_tables" | grep -q "Secret"; then
	echo "smoke_tenant: acme can see bravo's Secret table" >&2
	exit 1
fi
if ctl tok-acme exec "select v from Secret" >/dev/null 2>&1; then
	echo "smoke_tenant: acme read bravo's Secret rows" >&2
	exit 1
fi
ctl tok-acme exec "select count(*) from Flows" | grep -q "^1$" || {
	echo "smoke_tenant: acme's Flows count is not its own" >&2
	exit 1
}
ctl tok-bravo exec "select count(*) from Flows" | grep -q "^2$" || {
	echo "smoke_tenant: bravo's Flows count is not its own" >&2
	exit 1
}

# The events/sec quota: acme's bucket holds 8, so a 9-row batch must be
# refused as a quota error — and change nothing. Bravo has no quota.
batch="insert into Flows values ('q',1)"
for i in $(seq 2 9); do batch="$batch, ('q',$i)"; done
if out=$(ctl tok-acme exec "$batch" 2>&1); then
	echo "smoke_tenant: oversized batch slipped past the quota" >&2
	exit 1
else
	echo "$out" | grep -qi "quota" || {
		echo "smoke_tenant: quota refusal lost its error identity: $out" >&2
		exit 1
	}
fi
ctl tok-acme exec "select count(*) from Flows" | grep -q "^1$" || {
	echo "smoke_tenant: refused batch left rows behind" >&2
	exit 1
}
ctl tok-bravo exec "$batch" >/dev/null || {
	echo "smoke_tenant: unquota'd tenant was refused" >&2
	exit 1
}

# Accounting: the bound tenant's rollup reaches cachectl.
ctl tok-acme tenant | grep -q "acme" || {
	echo "smoke_tenant: cachectl tenant lost the rollup" >&2
	exit 1
}

echo "smoke_tenant: ok"
