#!/usr/bin/env bash
# CI gate: every internal/* package must carry a package comment ("// Package
# <name> ...", ideally in doc.go) stating what it does — the load-bearing
# packages also document their concurrency/ordering contract there (see
# docs/ARCHITECTURE.md, "Concurrency contracts, per package"). A package
# promoted to having a doc.go is load-bearing by definition, so its doc.go
# must contain a concurrency contract section ("# Concurrency ..." heading,
# or at least the word "concurrency") — a doc.go that only restates the
# package name is a gate failure, not documentation.
set -u
fail=0
# The public façade is load-bearing by definition: the root package's
# doc.go must document the Engine concurrency contract.
if ! grep -qs "^// Package unicache" doc.go; then
	echo "missing package comment: doc.go (want a '// Package unicache ...' block)"
	fail=1
fi
if ! grep -qsi "concurrency" doc.go; then
	echo "missing concurrency contract: doc.go (want a '# Concurrency ...' section for the public Engine API)"
	fail=1
fi
for dir in internal/*/; do
	pkg=$(basename "$dir")
	if ! grep -qs "^// Package $pkg" "$dir"*.go; then
		echo "missing package comment: ${dir} (want a '// Package ${pkg} ...' block, ideally in ${dir}doc.go)"
		fail=1
	fi
	if [ -f "${dir}doc.go" ] && ! grep -qsi "concurrency" "${dir}doc.go"; then
		echo "missing concurrency contract: ${dir}doc.go (want a '# Concurrency ...' section documenting the package's concurrency/ordering contract)"
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "package-doc gate failed" >&2
fi
exit "$fail"
