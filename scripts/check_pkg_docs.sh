#!/usr/bin/env bash
# CI gate: every internal/* package must carry a package comment ("// Package
# <name> ...", ideally in doc.go) stating what it does — the load-bearing
# packages also document their concurrency/ordering contract there (see
# docs/ARCHITECTURE.md, "Concurrency contracts, per package").
set -u
fail=0
for dir in internal/*/; do
	pkg=$(basename "$dir")
	if ! grep -qs "^// Package $pkg" "$dir"*.go; then
		echo "missing package comment: ${dir} (want a '// Package ${pkg} ...' block, ideally in ${dir}doc.go)"
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "package-doc gate failed" >&2
fi
exit "$fail"
