#!/usr/bin/env bash
# CI gate for the partitioned cluster: spawn three cached nodes, drive
# them as one engine through the comma-separated -addr/-remote specs
# (cachectl verbs, a CSV bulk load, the quickstart example), and run the
# cluster conformance backend under the race detector. Guards the
# consistent-hash routing, the per-node bulk path and the merged
# operator views — the single-node wire path is covered by
# smoke_remote.sh.
set -eu

ADDRS="127.0.0.1:7921,127.0.0.1:7922,127.0.0.1:7923"
DIR="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$DIR"' EXIT

go build -o "$DIR/cached" ./cmd/cached
go build -o "$DIR/cachectl" ./cmd/cachectl
go build -o "$DIR/quickstart" ./examples/quickstart

for port in 7921 7922 7923; do
	"$DIR/cached" -addr "127.0.0.1:$port" -timer 0 >"$DIR/cached-$port.log" 2>&1 &
	PIDS="$PIDS $!"
done

# Wait until every node answers; cachectl ping against the cluster spec
# round-trips all three connections.
for i in $(seq 1 50); do
	if "$DIR/cachectl" -addr "$ADDRS" ping >/dev/null 2>&1; then
		break
	fi
	if [ "$i" -eq 50 ]; then
		echo "cluster nodes did not come up" >&2
		cat "$DIR"/cached-*.log >&2
		exit 1
	fi
	sleep 0.1
done

# The quickstart runs unchanged against the cluster: same program text,
# three nodes behind the façade.
out=$("$DIR/quickstart" -remote "$ADDRS")
echo "$out"
echo "$out" | grep -q "over threshold: attic 33.0 1" || {
	echo "smoke: quickstart against the cluster lost the automaton notification" >&2
	exit 1
}

# Location transparency for the CLI: create tables without knowing (or
# caring) which node owns them, bulk-load one, and read everything back
# through the merged views.
"$DIR/cachectl" -addr "$ADDRS" exec "create table Flows (nbytes integer)" >/dev/null
"$DIR/cachectl" -addr "$ADDRS" exec "create table Alarms (sev integer)" >/dev/null
printf '1500\n64\n900\n' | "$DIR/cachectl" -addr "$ADDRS" load Flows | grep -q "loaded 3 row(s)" || {
	echo "smoke: cluster bulk load failed" >&2
	exit 1
}
"$DIR/cachectl" -addr "$ADDRS" exec "select count(*) from Flows" | grep -q "^3$" || {
	echo "smoke: cluster select lost rows" >&2
	exit 1
}
tables=$("$DIR/cachectl" -addr "$ADDRS" tables)
for t in Flows Alarms Readings; do
	echo "$tables" | grep -q "^$t$" || {
		echo "smoke: cluster tables view is missing $t" >&2
		exit 1
	}
done
"$DIR/cachectl" -addr "$ADDRS" stats >/dev/null

# The cluster conformance backend under the race detector: the same
# behavioral suite the embedded and remote backends pass, routed across
# three nodes.
go test . -race -count=1 -run 'TestCluster|TestConformance' -timeout 600s

echo "smoke_cluster: ok"
