#!/usr/bin/env bash
# CI gate for the wire path: spawn a cached server, run the quickstart
# example against it with -remote (the same program text that runs
# embedded), check the output, and exercise `cachectl stats` while a
# watch is live. Guards the RPC half of the location-transparent façade —
# the embedded half is covered by `go test .` (the conformance suite).
set -eu

ADDR="127.0.0.1:7911"
DIR="$(mktemp -d)"
trap 'kill "$CACHED_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/cached" ./cmd/cached
go build -o "$DIR/cachectl" ./cmd/cachectl
go build -o "$DIR/quickstart" ./examples/quickstart

"$DIR/cached" -addr "$ADDR" -timer 0 >"$DIR/cached.log" 2>&1 &
CACHED_PID=$!

# Wait for the server to accept connections.
for i in $(seq 1 50); do
	if "$DIR/cachectl" -addr "$ADDR" ping >/dev/null 2>&1; then
		break
	fi
	if [ "$i" -eq 50 ]; then
		echo "cached did not come up" >&2
		cat "$DIR/cached.log" >&2
		exit 1
	fi
	sleep 0.1
done

out=$("$DIR/quickstart" -remote "$ADDR")
echo "$out"
echo "$out" | grep -q "over threshold: attic 33.0 1" || {
	echo "smoke: quickstart -remote lost the automaton notification" >&2
	exit 1
}
echo "$out" | grep -q "tap observed" || {
	echo "smoke: quickstart -remote lost the watch tap" >&2
	exit 1
}

# The stats opcode: a live server answers with the (now empty) counters.
"$DIR/cachectl" -addr "$ADDR" stats
"$DIR/cachectl" -addr "$ADDR" exec "select count(*) from Readings" | grep -q "^5$" || {
	echo "smoke: remote select lost rows" >&2
	exit 1
}
echo "smoke_remote: ok"
