package unicache

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"unicache/internal/cache"
	"unicache/internal/rpc"
	"unicache/internal/types"
)

// clusterHarness is a 3-node loopback cluster with its internals exposed:
// the per-node caches (for server-side leak assertions), the ring (for
// picking topics with known owners) and the raw client-side conns (for
// simulating abrupt client death).
type clusterHarness struct {
	eng   Engine
	cas   []*cache.Cache
	names []string
	ring  *rpc.Ring
	conns []net.Conn
}

func newClusterHarness(t *testing.T, n int) *clusterHarness {
	t.Helper()
	h := &clusterHarness{}
	clients := make([]*rpc.Client, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cache.Config{
			TimerPeriod:    -1,
			PrintWriter:    &strings.Builder{},
			OnRuntimeError: func(int64, error) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		h.cas = append(h.cas, c)
		h.names = append(h.names, fmt.Sprintf("node%d", i))
		srv := rpc.NewServer(c)
		cEnd, sEnd := net.Pipe()
		go srv.ServeConn(sEnd)
		h.conns = append(h.conns, cEnd)
		clients[i] = rpc.NewClient(cEnd)
	}
	h.ring = rpc.NewRing(h.names, 0)
	h.eng = clusterFromClients(h.names, clients)
	t.Cleanup(func() { _ = h.eng.Close() })
	return h
}

// topicOwnedBy probes generated names until one hashes onto the wanted
// node — deterministic for a fixed name set, so the same topic lands on
// the same node in the engine under test.
func (h *clusterHarness) topicOwnedBy(t *testing.T, node int, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if h.ring.Owner(name) == node {
			return name
		}
	}
	t.Fatalf("no probed topic hashes onto node %d", node)
	return ""
}

// TestClusterTopicPlacement pins the partitioning model end to end: a
// table created through the cluster exists on exactly its ring owner,
// every data operation routes there, and the merged views (Tables, show
// tables) present one coherent namespace with node-local topics (Timer)
// reported once.
func TestClusterTopicPlacement(t *testing.T) {
	h := newClusterHarness(t, 3)
	topics := make([]string, 3)
	for node := range topics {
		topic := h.topicOwnedBy(t, node, "Place")
		topics[node] = topic
		if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topic)); err != nil {
			t.Fatal(err)
		}
	}
	for node, topic := range topics {
		for i, c := range h.cas {
			has := false
			for _, name := range c.Tables() {
				if name == topic {
					has = true
				}
			}
			if has != (i == node) {
				t.Errorf("topic %s on node %d: present=%v, want %v", topic, i, has, i == node)
			}
		}
		// Data ops are location-transparent: insert and query through the
		// cluster without knowing the owner.
		if err := h.eng.Insert(topic, types.Int(int64(node))); err != nil {
			t.Fatal(err)
		}
		res, err := h.eng.Exec(fmt.Sprintf(`select v from %s`, topic))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("select from %s returned %d rows", topic, len(res.Rows))
		}
		if v, _ := res.Rows[0][0].AsInt(); v != int64(node) {
			t.Errorf("%s row = %d, want %d", topic, v, node)
		}
	}
	tables, err := h.eng.Tables()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tables, ",")
	for _, topic := range topics {
		if !strings.Contains(joined, topic) {
			t.Errorf("Tables() = %s, missing %s", joined, topic)
		}
	}
	timerCount := 0
	for _, name := range tables {
		if name == TimerTopic {
			timerCount++
		}
	}
	if timerCount != 1 {
		t.Errorf("Tables() lists Timer %d times, want once", timerCount)
	}
	res, err := h.eng.Exec(`show tables`)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, row := range res.Rows {
		seen[row[0].String()]++
	}
	if seen[TimerTopic] != 1 {
		t.Errorf("show tables lists Timer %d times, want once", seen[TimerTopic])
	}
	for _, topic := range topics {
		if seen[topic] != 1 {
			t.Errorf("show tables lists %s %d times, want once", topic, seen[topic])
		}
	}
}

// TestClusterStatsMergeAndIDUniqueness pins the id remapping scheme:
// handles living on different nodes never collide, keep their sign
// convention (watches negative, automata positive), and each handle's ID
// finds exactly one row in the merged Stats.
func TestClusterStatsMergeAndIDUniqueness(t *testing.T) {
	h := newClusterHarness(t, 3)
	var watchIDs, autoIDs []int64
	for node := 0; node < 3; node++ {
		topic := h.topicOwnedBy(t, node, "Ids")
		if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topic)); err != nil {
			t.Fatal(err)
		}
		w, err := h.eng.Watch(topic, func(*Event) {})
		if err != nil {
			t.Fatal(err)
		}
		if w.ID() >= 0 {
			t.Errorf("watch id %d on node %d not negative", w.ID(), node)
		}
		watchIDs = append(watchIDs, w.ID())
		a, err := h.eng.Register(fmt.Sprintf(`subscribe t to %s; behavior { send(t.v); }`, topic))
		if err != nil {
			t.Fatal(err)
		}
		if a.ID() <= 0 {
			t.Errorf("automaton id %d on node %d not positive", a.ID(), node)
		}
		autoIDs = append(autoIDs, a.ID())
		// The handle's own Stats must carry the remapped id too.
		ws, err := w.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if ws.ID != w.ID() {
			t.Errorf("watch handle Stats().ID = %d, handle ID = %d", ws.ID, w.ID())
		}
		as, err := a.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if as.ID != a.ID() {
			t.Errorf("automaton handle Stats().ID = %d, handle ID = %d", as.ID, a.ID())
		}
	}
	all := append(append([]int64{}, watchIDs...), autoIDs...)
	uniq := make(map[int64]struct{}, len(all))
	for _, id := range all {
		if _, dup := uniq[id]; dup {
			t.Errorf("duplicate cluster id %d (all: %v)", id, all)
		}
		uniq[id] = struct{}{}
	}
	st, err := h.eng.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range watchIDs {
		n := 0
		for _, w := range st.Watches {
			if w.ID == id {
				n++
			}
		}
		if n != 1 {
			t.Errorf("watch id %d appears %d times in merged Stats", id, n)
		}
	}
	for _, id := range autoIDs {
		n := 0
		for _, a := range st.Automata {
			if a.ID == id {
				n++
			}
		}
		if n != 1 {
			t.Errorf("automaton id %d appears %d times in merged Stats", id, n)
		}
	}
}

// TestClusterCrossNodeAutomaton pins the bridge path: an automaton whose
// source topic lives on one node and whose home (first subscription's
// owner) is another still observes the source's full commit order — the
// owner's tap feeds a home-side replica, and the sends arrive in
// sequence. Closing the automaton tears the bridge down on both nodes.
func TestClusterCrossNodeAutomaton(t *testing.T) {
	h := newClusterHarness(t, 3)
	homeTopic := h.topicOwnedBy(t, 0, "Sink")
	srcTopic := h.topicOwnedBy(t, 1, "Src")
	for _, topic := range []string{homeTopic, srcTopic} {
		if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topic)); err != nil {
			t.Fatal(err)
		}
	}
	src := fmt.Sprintf(`
subscribe a to %s;
subscribe b to %s;
behavior {
	if (currentTopic() == '%s') {
		send(b.v);
	}
}`, homeTopic, srcTopic, srcTopic)
	a, err := h.eng.Register(src)
	if err != nil {
		t.Fatal(err)
	}
	// The bridge's machinery is observable server-side: a replica table
	// on the home node, and a tap on the owner.
	if _, err := h.cas[0].LookupTable(srcTopic); err != nil {
		t.Fatalf("home node has no replica of %s: %v", srcTopic, err)
	}
	if n := h.cas[1].Broker().Subscribers(srcTopic); n != 1 {
		t.Errorf("owner node has %d subscribers on %s, want 1 (the bridge tap)", n, srcTopic)
	}

	const total = 200
	rows := make([][]Value, total)
	for i := range rows {
		rows[i] = []Value{types.Int(int64(i + 1))}
	}
	if err := h.eng.InsertBatch(srcTopic, rows); err != nil {
		t.Fatal(err)
	}
	var got []int64
	deadline := time.After(30 * time.Second)
	for len(got) < total {
		select {
		case vals := <-a.Events():
			if len(vals) != 1 {
				t.Fatalf("send payload = %v", vals)
			}
			v, _ := vals[0].AsInt()
			got = append(got, v)
		case <-deadline:
			t.Fatalf("received %d/%d bridged sends", len(got), total)
		}
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("bridged send %d = %d, want %d (order not preserved: %v...)", i, v, i+1, got[:i+1])
		}
	}

	if err := a.Close(); err != nil {
		t.Fatalf("automaton close: %v", err)
	}
	waitFor(t, 10*time.Second, "bridge teardown", func() bool {
		return h.cas[1].Broker().Subscribers(srcTopic) == 0 &&
			len(h.cas[1].TapStats()) == 0 &&
			h.cas[0].Registry().Len() == 0
	})
}

// TestClusterWaitIdleExact pins cluster quiescence for home-local work:
// once InsertBatch returns, every event is in the automaton's inbox on
// its home node, so a true WaitIdle means the registry drained — the
// processed counter must equal the inserted count exactly, no polling
// slack.
func TestClusterWaitIdleExact(t *testing.T) {
	h := newClusterHarness(t, 3)
	topic := h.topicOwnedBy(t, 2, "Quiet")
	if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topic)); err != nil {
		t.Fatal(err)
	}
	a, err := h.eng.Register(fmt.Sprintf(`subscribe t to %s; behavior { send(t.v); }`, topic))
	if err != nil {
		t.Fatal(err)
	}
	go func() { // drain sends so the pipeline never wedges
		for range a.Events() {
		}
	}()
	const total = 500
	rows := make([][]Value, total)
	for i := range rows {
		rows[i] = []Value{types.Int(int64(i))}
	}
	if err := h.eng.InsertBatch(topic, rows); err != nil {
		t.Fatal(err)
	}
	if !WaitIdle(h.eng, 30*time.Second) {
		t.Fatal("cluster WaitIdle timed out")
	}
	st, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Processed != total {
		t.Errorf("processed = %d after idle WaitIdle, want exactly %d", st.Processed, total)
	}
}

// TestClusterTeardownOnAbruptClientDeath pins the leak contract the
// ROADMAP's scale-out item demands: when a cluster client dies without
// closing anything — taps, automata and cross-node bridges all live —
// every node notices its connection drop and unwinds every subscriber,
// tap and automaton it held for that client. No server-side state may
// survive the client.
func TestClusterTeardownOnAbruptClientDeath(t *testing.T) {
	h := newClusterHarness(t, 3)
	topics := make([]string, 3)
	for node := range topics {
		topics[node] = h.topicOwnedBy(t, node, "Death")
		if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topics[node])); err != nil {
			t.Fatal(err)
		}
		if _, err := h.eng.Watch(topics[node], func(*Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	// A cross-node automaton: homed on topics[0]'s owner, bridged from
	// topics[1]'s owner — its teardown spans two nodes.
	if _, err := h.eng.Register(fmt.Sprintf(
		`subscribe a to %s; subscribe b to %s; behavior { send(1); }`,
		topics[0], topics[1])); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, c := range h.cas {
		busy += c.Broker().Subscribers(topics[0]) + c.Broker().Subscribers(topics[1]) + c.Broker().Subscribers(topics[2])
	}
	if busy == 0 {
		t.Fatal("harness bug: no live subscribers before the kill")
	}

	// Abrupt death: sever every connection at the transport, no unwind
	// round trips, exactly like a SIGKILLed client process.
	for _, conn := range h.conns {
		_ = conn.Close()
	}
	waitFor(t, 10*time.Second, "all nodes to unwind the dead client", func() bool {
		for _, c := range h.cas {
			if len(c.TapStats()) != 0 || c.Registry().Len() != 0 {
				return false
			}
			for _, topic := range topics {
				if c.Broker().Subscribers(topic) != 0 {
					return false
				}
			}
		}
		return true
	})
}

// TestClusterBatcherRoutes pins the bulk-load surface: rows for tables
// owned by different nodes, poured through one ClusterBatcher, all land
// on their owners.
func TestClusterBatcherRoutes(t *testing.T) {
	h := newClusterHarness(t, 3)
	topics := make([]string, 3)
	for node := range topics {
		topics[node] = h.topicOwnedBy(t, node, "Bulk")
		if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topics[node])); err != nil {
			t.Fatal(err)
		}
	}
	b := h.eng.(interface{ Batcher() *ClusterBatcher }).Batcher()
	const perTopic = 600
	for i := 0; i < perTopic; i++ {
		for _, topic := range topics {
			if err := b.Add(topic, types.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for _, topic := range topics {
		res, err := h.eng.Exec(fmt.Sprintf(`select count(*) from %s`, topic))
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.Rows[0][0].AsInt(); n != perTopic {
			t.Errorf("count(%s) = %d, want %d", topic, n, perTopic)
		}
	}
}

// TestClusterSentinelErrorsAcrossNodes pins that uerr sentinels survive
// routing to any node: errors.Is answers identically no matter which
// node produced the error.
func TestClusterSentinelErrorsAcrossNodes(t *testing.T) {
	h := newClusterHarness(t, 3)
	for node := 0; node < 3; node++ {
		missing := h.topicOwnedBy(t, node, "Missing")
		err := h.eng.Insert(missing, types.Int(1))
		if !errors.Is(err, ErrNoSuchTable) {
			t.Errorf("Insert(%s) on node %d = %v, want ErrNoSuchTable", missing, node, err)
		}
		topic := h.topicOwnedBy(t, node, "Dup")
		if _, err := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topic)); err != nil {
			t.Fatal(err)
		}
		if err := h.eng.Insert(topic, types.Int(1)); err != nil {
			t.Fatal(err)
		}
		err = func() error {
			_, e := h.eng.Exec(fmt.Sprintf(`create table %s (v integer)`, topic))
			return e
		}()
		if !errors.Is(err, ErrTableExists) {
			t.Errorf("duplicate create on node %d = %v, want ErrTableExists", node, err)
		}
	}
}
