package unicache

import (
	"time"

	"unicache/internal/cache"
	"unicache/internal/gapl"
	"unicache/internal/pubsub"
	"unicache/internal/sql"
	"unicache/internal/tenant"
	"unicache/internal/types"
	"unicache/internal/uerr"
)

// The value, schema and result vocabulary of the engine, re-exported from
// the internal layers as aliases so programs written against the façade
// never import internal packages. (Aliases keep type identity: a
// unicache.Value IS a types.Value, so the façade adds no conversion cost
// on the hot path.)
type (
	// Value is one typed cell of a tuple.
	Value = types.Value
	// Event is one committed tuple on a topic, carrying its per-topic
	// sequence number and commit timestamp. Events observed through a
	// Remote or Cluster engine carry the topic's schema resolved through
	// the connection's describe cache, so fields resolve by name exactly
	// as embedded; Schema is nil only if that resolution failed.
	Event = types.Event
	// Schema describes a table/topic: name, persistence, key, columns.
	Schema = types.Schema
	// Column is one schema column.
	Column = types.Column
	// Result is an Exec query result: columns, rows, affected count.
	Result = sql.Result
	// Policy is an overflow policy for bounded subscription inboxes.
	Policy = pubsub.Policy
	// Config tunes an Embedded engine's underlying cache.
	Config = cache.Config
	// CompileMode selects how GAPL automata execute their clauses (the
	// Config.CompileMode field): ModeAuto compiles each clause to chained
	// Go closures on first execution, falling back to the bytecode
	// interpreter for anything not compilable; ModeVM forces the
	// interpreter. Outputs are bit-identical either way — the conformance
	// suite pins it.
	CompileMode = gapl.CompileMode
)

// The GAPL dispatch modes, re-exported.
const (
	ModeAuto = gapl.ModeAuto
	ModeVM   = gapl.ModeVM
)

// The overflow policies, re-exported.
const (
	// Block parks the publisher until the subscriber drains (backpressure).
	Block = pubsub.Block
	// DropOldest sheds the oldest queued events, counting them in Dropped.
	DropOldest = pubsub.DropOldest
	// Fail detaches the subscription on overflow.
	Fail = pubsub.Fail
)

// The sentinel errors, re-exported from the shared taxonomy. They hold
// across backends: errors.Is(err, ErrNoSuchTable) is true for a Remote
// engine exactly when it would be for an Embedded one — the RPC layer
// carries the sentinel's identity over the wire as a numeric code.
var (
	ErrNoSuchTable     = uerr.ErrNoSuchTable
	ErrTableExists     = uerr.ErrTableExists
	ErrBadSchema       = uerr.ErrBadSchema
	ErrClosed          = uerr.ErrClosed
	ErrNoSuchAutomaton = uerr.ErrNoSuchAutomaton
	// ErrQuotaExceeded marks an operation a tenant quota refused — table,
	// automaton or watch admission, the events/sec token bucket, or the
	// WAL-bytes bound. Identical across backends: a Remote engine's quota
	// rejection answers errors.Is exactly as an Embedded one.
	ErrQuotaExceeded = uerr.ErrQuotaExceeded
	// ErrUnauthorized marks a request on a multi-tenant server whose
	// connection has not (or wrongly) authenticated.
	ErrUnauthorized = uerr.ErrUnauthorized
)

// The tenancy vocabulary, re-exported from the tenant layer. A cache with
// Config.Tenants set partitions its whole surface — tables, automata,
// watches, stats — into per-tenant namespaces; see docs/ARCHITECTURE.md.
type (
	// TenantQuota is one tenant's resource limits (zero fields unlimited).
	TenantQuota = tenant.Quota
	// TenantSpec declares one tenant: name, shared-secret token, quota.
	TenantSpec = tenant.Spec
	// TenantStats is one tenant's accounting rollup.
	TenantStats = tenant.Stats
)

// LoadTenants reads a tenants.json registry ({"tenants": [{"name": ...,
// "token": ..., "quota": {...}}, ...]}) for Config.Tenants.
func LoadTenants(path string) (*tenant.Registry, error) { return tenant.Load(path) }

// ParseTenants parses a tenants.json document for Config.Tenants.
func ParseTenants(data []byte) (*tenant.Registry, error) { return tenant.Parse(data) }

// Engine is the canonical, location-transparent API of the unified
// system: one surface over pub/sub subscriptions (Watch), stream-database
// tables (Exec, Insert, CreateTable) and CEP automata (Register), backed
// either by an in-process cache (Embedded) or by a cached server over RPC
// (Remote). Program text written against Engine runs on both backends by
// swapping one constructor; the conformance suite in conformance_test.go
// pins that the behavioral contract — watch ordering, inbox options,
// stats counters, sentinel errors — is identical.
type Engine interface {
	// Exec parses and executes one SQL statement.
	Exec(src string) (*Result, error)
	// Insert commits one tuple into a table, publishing it on the table's
	// topic (the fast path: no SQL parsing).
	Insert(table string, vals ...Value) error
	// InsertBatch commits a run of rows into one table as a single batch:
	// one commit-domain acquisition, a contiguous sequence run, one
	// shared timestamp, one delivery per subscriber.
	InsertBatch(table string, rows [][]Value) error
	// CreateTable installs a table and its topic.
	CreateTable(schema *Schema) error
	// Tables returns the table/topic names in lexical order.
	Tables() ([]string, error)
	// Watch attaches an asynchronous observer to a topic: fn receives the
	// topic's events in commit order, decoupled from the commit path by a
	// bounded inbox whose depth and overflow policy the options choose.
	Watch(topic string, fn func(*Event), opts ...WatchOption) (Watch, error)
	// Register compiles and starts a GAPL automaton; its send() output
	// surfaces on the returned handle's Events channel.
	Register(source string, opts ...AutomatonOption) (Automaton, error)
	// Stats snapshots every live watch tap and automaton on the engine
	// with its dispatch-pipeline depth and dropped counters, so operators
	// can see which subscriptions are behind.
	Stats() (Stats, error)
	// Close tears the engine down: every watch and automaton handle
	// created through it is detached first. Close is idempotent;
	// operations after Close return ErrClosed.
	Close() error
}

// Watch is a live topic subscription handle. Close detaches it: after
// Close returns, the callback never runs again (queued events are
// discarded).
type Watch interface {
	// ID is the subscription's engine-assigned id (negative: watcher ids
	// live in their own id space, disjoint from automaton ids).
	ID() int64
	// Topic is the watched topic.
	Topic() string
	// Stats reports the tap's inbox depth and dropped-event count.
	Stats() (SubscriptionStats, error)
	// Close detaches the tap. Idempotent.
	Close() error
}

// Automaton is a live CEP automaton handle.
type Automaton interface {
	// ID is the automaton's engine-assigned id (positive).
	ID() int64
	// Events is the channel of send() notifications from this automaton,
	// in send order. The channel is buffered (EventBuffer option); an
	// application that stops draining it loses the oldest notifications
	// rather than stalling the automaton. It closes when the automaton is
	// closed (or the engine shuts down).
	Events() <-chan []Value
	// Stats reports the automaton's inbox depth, dropped-event count and
	// processed-event count.
	Stats() (AutomatonStats, error)
	// Close unregisters the automaton. Idempotent.
	Close() error
}

// SubscriptionStats is one watch tap's observability row.
type SubscriptionStats struct {
	ID      int64
	Topic   string
	Depth   int
	Dropped uint64
}

// AutomatonStats is one automaton's observability row.
type AutomatonStats struct {
	ID        int64
	Depth     int
	Dropped   uint64
	Processed uint64
}

// Stats is an engine-wide observability snapshot: every live watch tap
// and automaton (for Remote, everything on the server, not just this
// connection's subscriptions — the operator view).
type Stats struct {
	Watches  []SubscriptionStats
	Automata []AutomatonStats
	// Durability is the WAL's counters when the backend runs durably
	// (Config.DataDir set on an Embedded engine, -data on a cached
	// server); nil for an in-memory backend.
	Durability *DurabilityStats
	// Tenant is the engine's own tenant rollup when the engine is
	// tenant-bound (an Embedded.Tenant sub-engine, or a Remote/Cluster
	// dialed WithToken); nil otherwise.
	Tenant *TenantStats
	// Tenants is the all-tenants rollup, name-sorted — the operator view,
	// available only on an unscoped multi-tenant Embedded engine (a
	// tenant-bound engine sees exactly its own rollup).
	Tenants []TenantStats
}

// The durability observability rows, re-exported from the cache layer.
type (
	// DurabilityStats is the engine-wide durability snapshot: data
	// directory, live WAL footprint, fsync/snapshot/recovery counters and
	// the per-topic domain rows.
	DurabilityStats = cache.DurabilityStats
	// DomainDurability is one commit domain's durability row: topic,
	// sequence high-water mark, live log bytes.
	DomainDurability = cache.DomainDurability
)

// WatchOption tunes one Watch subscription.
type WatchOption func(*watchOptions)

type watchOptions struct {
	queue  int
	policy Policy
}

// WatchQueue bounds the tap's inbox to n events (n < 0 means unbounded;
// the default is the backend's default bound, 1024).
func WatchQueue(n int) WatchOption {
	return func(o *watchOptions) { o.queue = n }
}

// WatchPolicy sets the overflow policy of a bounded tap inbox (default
// Block).
func WatchPolicy(p Policy) WatchOption {
	return func(o *watchOptions) { o.policy = p }
}

// AutomatonOption tunes one Register call.
type AutomatonOption func(*automatonOptions)

type automatonOptions struct {
	inboxCapacity int
	inboxPolicy   Policy
	eventBuffer   int
}

// DefaultEventBuffer is the default capacity of an Automaton handle's
// Events channel.
const DefaultEventBuffer = 1024

// InboxCapacity bounds this automaton's inbox: 0 (the default) uses the
// engine-wide default, a positive value bounds the inbox at that depth,
// and a negative value forces it unbounded regardless of the engine
// default.
func InboxCapacity(n int) AutomatonOption {
	return func(o *automatonOptions) { o.inboxCapacity = n }
}

// InboxPolicy sets the overflow policy applied when InboxCapacity > 0:
// Block backpressures the publishing topic, DropOldest sheds the oldest
// queued events, Fail unregisters the automaton on overflow.
func InboxPolicy(p Policy) AutomatonOption {
	return func(o *automatonOptions) { o.inboxPolicy = p }
}

// EventBuffer sets the capacity of the handle's Events channel (default
// DefaultEventBuffer). When the application stops draining it, the
// oldest buffered notifications are shed so the automaton never stalls
// on its own reporting channel.
func EventBuffer(n int) AutomatonOption {
	return func(o *automatonOptions) { o.eventBuffer = n }
}

func applyWatchOptions(opts []WatchOption) watchOptions {
	var o watchOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func applyAutomatonOptions(opts []AutomatonOption) automatonOptions {
	o := automatonOptions{eventBuffer: DefaultEventBuffer}
	for _, opt := range opts {
		opt(&o)
	}
	if o.eventBuffer <= 0 {
		o.eventBuffer = DefaultEventBuffer
	}
	return o
}

// WaitIdle blocks until the engine's automata appear quiescent (depth 0
// and processed counts stable across consecutive snapshots) or the
// timeout elapses, reporting whether quiescence was reached. Every
// shipped backend answers exactly: Embedded from the registry's idle
// test, Remote and Cluster through the quiesce opcode (falling back to
// Stats polling against a server predating it). Tools and examples use
// it to bracket complete processing of a workload.
func WaitIdle(e Engine, timeout time.Duration) bool {
	if w, ok := e.(interface{ WaitIdle(time.Duration) bool }); ok {
		return w.WaitIdle(timeout)
	}
	return pollIdle(e, timeout)
}

// pollIdle is the stats-polling quiescence fallback for engines without a
// precise WaitIdle: best-effort by nature (an inbox can refill between
// the snapshot and the return).
func pollIdle(e Engine, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	var last []AutomatonStats
	havePrev := false
	for {
		st, err := e.Stats()
		if err != nil {
			return false
		}
		quiet := true
		for _, a := range st.Automata {
			if a.Depth != 0 {
				quiet = false
				break
			}
		}
		if quiet && havePrev && sameProgress(last, st.Automata) {
			return true
		}
		last, havePrev = st.Automata, true
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sameProgress reports whether two automaton snapshots show identical
// processed counts for the same automata set.
func sameProgress(a, b []AutomatonStats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Processed != b[i].Processed {
			return false
		}
	}
	return true
}
