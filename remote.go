package unicache

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/rpc"
	"unicache/internal/types"
)

// Remote is the RPC Engine backend: the same Engine surface over a cached
// server. Watches become server-side dispatcher-backed taps whose events
// are pushed over the connection's coalesced event-frame path; automaton
// send()s are demultiplexed from the client's push channel onto
// per-handle Events channels. Closing the connection — gracefully or by
// process death — tears down every watch and automaton it created
// server-side.
type Remote struct {
	cl *rpc.Client

	mu      sync.Mutex
	closed  bool
	watches map[int64]*remoteWatch
	autos   map[int64]*remoteAutomaton
	// stagedSends buffers send() notifications that arrive for an
	// automaton id before Register's caller has installed the handle
	// (the server's push writer can beat the reply's consumer to it);
	// Register drains them, in order, on installation. retiredAutos
	// records handle-Closed ids — automaton ids are never reused, so a
	// late in-flight send for a retired id is discarded, not staged.
	stagedSends  map[int64][][]Value
	retiredAutos map[int64]struct{}

	demuxDone chan struct{}
}

var _ Engine = (*Remote)(nil)

// DialOption tunes DialRemote / Dial / Cluster connections.
type DialOption func(*dialOptions)

type dialOptions struct {
	token string
}

// WithToken authenticates each dialed connection to its multi-tenant
// server with the tenant's shared-secret token: the engine comes back
// already bound to the tenant's namespaced, quota-checked view (or the
// dial fails with ErrUnauthorized). Servers without tenants reject
// tokens; omit the option for them.
func WithToken(token string) DialOption {
	return func(o *dialOptions) { o.token = token }
}

func applyDialOptions(opts []DialOption) dialOptions {
	var o dialOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// DialRemote connects an Engine to a cached server over TCP.
func DialRemote(addr string, opts ...DialOption) (*Remote, error) {
	o := applyDialOptions(opts)
	cl, err := rpc.DialWith(addr, rpc.ClientConfig{Token: o.token})
	if err != nil {
		return nil, err
	}
	return RemoteFromClient(cl), nil
}

// NewRemote wraps an established connection (e.g. one side of net.Pipe)
// in the Engine façade.
func NewRemote(conn net.Conn) *Remote {
	return RemoteFromClient(rpc.NewClient(conn))
}

// RemoteFromClient wraps an existing RPC client. The engine takes
// ownership: Close closes the client.
func RemoteFromClient(cl *rpc.Client) *Remote {
	r := &Remote{
		cl:           cl,
		watches:      make(map[int64]*remoteWatch),
		autos:        make(map[int64]*remoteAutomaton),
		stagedSends:  make(map[int64][][]Value),
		retiredAutos: make(map[int64]struct{}),
		demuxDone:    make(chan struct{}),
	}
	go r.demux()
	return r
}

// Client exposes the underlying RPC client for callers that need the
// lower-level connection surface (the auto-flushing Batcher, Ping).
func (r *Remote) Client() *rpc.Client { return r.cl }

// Auth binds the connection to the tenant owning token, returning the
// tenant's name — for engines built over pre-established connections
// (NewRemote); DialRemote WithToken performs it automatically. A
// connection authenticates at most once.
func (r *Remote) Auth(token string) (string, error) {
	if err := r.guard(); err != nil {
		return "", err
	}
	return r.cl.Auth(token)
}

// demux routes the connection's send() notifications to their automaton
// handles. It is the only consumer of the client's Events channel, and it
// never blocks (handle delivery sheds the oldest buffered notification
// when full), so the client's read loop is never wedged by a slow
// application — the hazard ClientConfig.EventPolicy documents cannot
// arise through this façade.
func (r *Remote) demux() {
	defer close(r.demuxDone)
	for ev := range r.cl.Events() {
		r.mu.Lock()
		h := r.autos[ev.AutomatonID]
		_, dead := r.retiredAutos[ev.AutomatonID]
		switch {
		case h != nil:
			h.deliver(ev.Vals)
		case r.closed || dead || ev.AutomatonID <= 0:
			// Dropped: the engine is closed, the handle was Closed (a late
			// in-flight send), or id 0 marks a pre-registration send
			// (initialization clause), unattributable by protocol contract.
		case len(r.stagedSends[ev.AutomatonID]) < DefaultEventBuffer:
			r.stagedSends[ev.AutomatonID] = append(r.stagedSends[ev.AutomatonID], ev.Vals)
		}
		r.mu.Unlock()
	}
	// The connection died: no further sends can arrive, so the handles'
	// channels can close (after removal, so deliver can't race the close).
	r.mu.Lock()
	autos := r.autos
	r.autos = make(map[int64]*remoteAutomaton)
	r.mu.Unlock()
	for _, h := range autos {
		h.closeEvents()
	}
}

func (r *Remote) guard() error {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return fmt.Errorf("unicache: %w", ErrClosed)
	}
	return nil
}

// Exec implements Engine.
func (r *Remote) Exec(src string) (*Result, error) {
	if err := r.guard(); err != nil {
		return nil, err
	}
	return r.cl.Exec(src)
}

// Insert implements Engine.
func (r *Remote) Insert(table string, vals ...Value) error {
	if err := r.guard(); err != nil {
		return err
	}
	return r.cl.Insert(table, vals...)
}

// InsertBatch implements Engine.
func (r *Remote) InsertBatch(table string, rows [][]Value) error {
	if err := r.guard(); err != nil {
		return err
	}
	return r.cl.InsertBatch(table, rows)
}

// CreateTable implements Engine: the schema travels as DDL (the protocol
// already carries SQL; a dedicated opcode would duplicate the grammar).
func (r *Remote) CreateTable(schema *Schema) error {
	if err := r.guard(); err != nil {
		return err
	}
	if schema == nil || len(schema.Cols) == 0 {
		return fmt.Errorf("unicache: nil or empty schema: %w", ErrBadSchema)
	}
	var b strings.Builder
	if schema.Persistent {
		b.WriteString("create persistent table ")
	} else {
		b.WriteString("create table ")
	}
	b.WriteString(schema.Name)
	b.WriteString(" (")
	for i, col := range schema.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(col.Name)
		b.WriteByte(' ')
		b.WriteString(col.Type.String())
		if schema.Persistent && i == schema.Key {
			b.WriteString(" primary key")
		}
	}
	b.WriteString(")")
	_, err := r.cl.Exec(b.String())
	return err
}

// Tables implements Engine (topics listed via the SQL catalog statement).
func (r *Remote) Tables() ([]string, error) {
	if err := r.guard(); err != nil {
		return nil, err
	}
	res, err := r.cl.Exec("show tables")
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row[0].String())
	}
	return out, nil
}

// Watch implements Engine: a server-side tap on the topic, its events
// pushed over the connection and handed to fn on the client's read-loop
// goroutine in commit order. Events carry topic, commit timestamp,
// sequence, tuple values, and the topic's schema resolved once through
// the connection's describe cache (nil only if that resolution failed).
func (r *Remote) Watch(topic string, fn func(*Event), opts ...WatchOption) (Watch, error) {
	if err := r.guard(); err != nil {
		return nil, err
	}
	o := applyWatchOptions(opts)
	id, err := r.cl.WatchWith(topic, fn, rpc.WatchOptions{Queue: o.queue, Policy: o.policy})
	if err != nil {
		return nil, err
	}
	w := &remoteWatch{r: r, id: id, topic: topic}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = r.cl.Unwatch(id)
		return nil, fmt.Errorf("unicache: %w", ErrClosed)
	}
	r.watches[id] = w
	r.mu.Unlock()
	return w, nil
}

// Register implements Engine: the GAPL source and the per-automaton
// options travel over the wire, and the automaton runs server-side; its
// send() notifications surface on the handle's Events channel.
func (r *Remote) Register(source string, opts ...AutomatonOption) (Automaton, error) {
	if err := r.guard(); err != nil {
		return nil, err
	}
	o := applyAutomatonOptions(opts)
	id, err := r.cl.RegisterWith(source, automaton.Options{
		InboxCapacity: o.inboxCapacity,
		InboxPolicy:   o.inboxPolicy,
	})
	if err != nil {
		return nil, err
	}
	h := &remoteAutomaton{r: r, id: id, events: make(chan []Value, o.eventBuffer)}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = r.cl.Unregister(id)
		close(h.events)
		return nil, fmt.Errorf("unicache: %w", ErrClosed)
	}
	r.autos[id] = h
	for _, vals := range r.stagedSends[id] {
		h.deliver(vals)
	}
	delete(r.stagedSends, id)
	r.mu.Unlock()
	return h, nil
}

// Stats implements Engine: the server's full observability snapshot
// (every connection's taps and every automaton), fetched via msgStats.
func (r *Remote) Stats() (Stats, error) {
	if err := r.guard(); err != nil {
		return Stats{}, err
	}
	ss, err := r.cl.Stats()
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for _, w := range ss.Watches {
		st.Watches = append(st.Watches, SubscriptionStats{
			ID: w.ID, Topic: w.Topic, Depth: w.Depth, Dropped: w.Dropped,
		})
	}
	for _, a := range ss.Automata {
		st.Automata = append(st.Automata, AutomatonStats{
			ID: a.ID, Depth: a.Depth, Dropped: a.Dropped, Processed: a.Processed,
		})
	}
	if d := ss.Durability; d != nil {
		dur := DurabilityStats{
			Dir:          d.Dir,
			WALBytes:     d.WALBytes,
			Fsyncs:       d.Fsyncs,
			Snapshots:    d.Snapshots,
			LastSnapshot: types.Timestamp(d.LastSnapshot),
			Replayed:     d.Replayed,
			TornTails:    d.TornTails,
		}
		for _, dd := range d.Domains {
			dur.Domains = append(dur.Domains, DomainDurability{
				Topic: dd.Topic, Seq: dd.Seq, WALBytes: dd.WALBytes,
			})
		}
		st.Durability = &dur
	}
	if t := ss.Tenant; t != nil {
		ts := tenantStatsFromWire(t)
		st.Tenant = &ts
	}
	return st, nil
}

// tenantStatsFromWire converts the RPC tenant row to the façade type.
func tenantStatsFromWire(t *rpc.TenantStat) TenantStats {
	return TenantStats{
		Name:         t.Name,
		Tables:       int(t.Tables),
		Automata:     int(t.Automata),
		Watches:      int(t.Watches),
		Events:       t.Events,
		EventsPerSec: t.EventsPerSec,
		Dropped:      t.Dropped,
		Rejected:     t.Rejected,
		WALBytes:     t.WALBytes,
		Quota: TenantQuota{
			MaxTables:       int(t.MaxTables),
			MaxAutomata:     int(t.MaxAutomata),
			MaxInboxDepth:   int(t.MaxInboxDepth),
			MaxEventsPerSec: int(t.MaxEventsPerSec),
			MaxWALBytes:     t.MaxWALBytes,
		},
	}
}

// WaitIdle blocks until the server's automaton registry is precisely
// idle or the timeout elapses, reporting which. It rides the dedicated
// quiesce opcode — the registry's own idle test, not a stats-snapshot
// inference — so a true return means every inbox was empty serverside.
// Against a server predating the opcode (whose reply shape won't match)
// it falls back to the best-effort stats-polling loop.
func (r *Remote) WaitIdle(timeout time.Duration) bool {
	if err := r.guard(); err != nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain < 0 {
			remain = 0
		}
		idle, err := r.cl.Quiesce(remain)
		if err != nil {
			// Connection death yields false below; an unexpected-reply
			// error (pre-quiesce server) degrades to polling.
			if r.guard() != nil {
				return false
			}
			return pollIdle(r, remain)
		}
		if idle || time.Now().After(deadline) {
			return idle
		}
		// Not idle with time left: the server clamped our timeout; ask again.
	}
}

// Close implements Engine: tears down the connection. The server
// unregisters this connection's automata and taps when it sees the
// connection die — the same path that cleans up after a crashed client —
// so no explicit unwind round trips are needed.
func (r *Remote) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	watches := r.watches
	r.watches = make(map[int64]*remoteWatch)
	r.mu.Unlock()
	for _, w := range watches {
		w.markClosed()
	}
	err := r.cl.Close()
	<-r.demuxDone // demux closes the automaton handles' channels
	return err
}

// remoteWatch is a Watch handle over a server-side tap.
type remoteWatch struct {
	r     *Remote
	id    int64
	topic string
	once  sync.Once
}

func (w *remoteWatch) ID() int64     { return w.id }
func (w *remoteWatch) Topic() string { return w.topic }

func (w *remoteWatch) Stats() (SubscriptionStats, error) {
	ss, err := w.r.cl.Stats()
	if err != nil {
		return SubscriptionStats{}, err
	}
	for _, s := range ss.Watches {
		if s.ID == w.id {
			return SubscriptionStats{ID: s.ID, Topic: s.Topic, Depth: s.Depth, Dropped: s.Dropped}, nil
		}
	}
	return SubscriptionStats{}, fmt.Errorf("unicache: watch %d: %w", w.id, ErrClosed)
}

func (w *remoteWatch) Close() error {
	var err error
	w.once.Do(func() {
		w.r.mu.Lock()
		delete(w.r.watches, w.id)
		w.r.mu.Unlock()
		err = w.r.cl.Unwatch(w.id)
	})
	return err
}

// markClosed makes a later Close a no-op (the engine-level Close tears
// the whole connection down; no per-watch round trip is needed).
func (w *remoteWatch) markClosed() { w.once.Do(func() {}) }

// remoteAutomaton is an Automaton handle over a server-side automaton.
type remoteAutomaton struct {
	r      *Remote
	id     int64
	events chan []Value
	once   sync.Once
	chOnce sync.Once
}

// closeEvents closes the Events channel exactly once, whichever of
// handle Close and connection-death teardown gets there first.
func (h *remoteAutomaton) closeEvents() {
	h.chOnce.Do(func() { close(h.events) })
}

// deliver hands one send() to the Events channel, shedding the oldest
// buffered notification when the application is not draining. Only the
// demux goroutine (under r.mu) calls it, so the drop-then-retry loop
// terminates.
func (h *remoteAutomaton) deliver(vals []Value) {
	for {
		select {
		case h.events <- vals:
			return
		default:
		}
		select {
		case <-h.events:
		default:
		}
	}
}

func (h *remoteAutomaton) ID() int64              { return h.id }
func (h *remoteAutomaton) Events() <-chan []Value { return h.events }

func (h *remoteAutomaton) Stats() (AutomatonStats, error) {
	ss, err := h.r.cl.Stats()
	if err != nil {
		return AutomatonStats{}, err
	}
	for _, a := range ss.Automata {
		if a.ID == h.id {
			return AutomatonStats{ID: a.ID, Depth: a.Depth, Dropped: a.Dropped, Processed: a.Processed}, nil
		}
	}
	return AutomatonStats{}, fmt.Errorf("unicache: automaton %d: %w", h.id, ErrClosed)
}

func (h *remoteAutomaton) Close() error {
	var err error
	h.once.Do(func() {
		h.r.mu.Lock()
		closed := h.r.closed
		delete(h.r.autos, h.id)
		delete(h.r.stagedSends, h.id)
		h.r.retiredAutos[h.id] = struct{}{}
		h.r.mu.Unlock()
		if closed {
			return // engine Close tears the connection down wholesale
		}
		err = h.r.cl.Unregister(h.id)
		// The handle is out of the demux map, so no deliver can race this.
		h.closeEvents()
	})
	return err
}
