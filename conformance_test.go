// The backend-parameterized conformance suite: every behavioral test runs
// against all Engine implementations — Embedded (in-process cache), the
// same durable (WAL-backed), Remote (RPC client against a served cache),
// and Cluster (hash-partitioned across three served caches) — pinning
// that the façade is location-transparent: watch ordering, per-automaton
// inbox options, stats counters and sentinel-error identity are identical
// across backends.
package unicache

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"unicache/internal/cache"
	"unicache/internal/rpc"
	"unicache/internal/types"
)

// backendPair is one backend's harness: a primary engine plus a second,
// independent engine over the same underlying cache (for tests that must
// keep committing while the primary's delivery path is deliberately
// stalled).
type backendPair struct {
	primary   Engine
	secondary Engine
}

// forEachBackend runs fn once per backend. cfg configures the underlying
// cache of both; the Timer is disabled for determinism unless cfg sets a
// period.
func forEachBackend(t *testing.T, cfg Config, fn func(t *testing.T, p backendPair)) {
	t.Helper()
	if cfg.TimerPeriod == 0 {
		cfg.TimerPeriod = -1
	}
	if cfg.PrintWriter == nil {
		cfg.PrintWriter = &strings.Builder{}
	}
	if cfg.OnRuntimeError == nil {
		cfg.OnRuntimeError = func(int64, error) {} // Fail-policy detaches are expected in some tests
	}
	t.Run("embedded", func(t *testing.T) {
		e, err := NewEmbedded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		second := Embed(e.Cache())
		t.Cleanup(func() { _ = second.Close() })
		fn(t, backendPair{primary: e, secondary: second})
	})
	t.Run("durable", func(t *testing.T) {
		// The same embedded engine, running over a write-ahead log: the
		// behavioral contract must not notice durability.
		dcfg := cfg
		dcfg.DataDir = t.TempDir()
		e, err := NewEmbedded(dcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		second := Embed(e.Cache())
		t.Cleanup(func() { _ = second.Close() })
		fn(t, backendPair{primary: e, secondary: second})
	})
	t.Run("remote", func(t *testing.T) {
		c, err := cache.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		srv := rpc.NewServer(c)
		dial := func() Engine {
			cEnd, sEnd := net.Pipe()
			go srv.ServeConn(sEnd)
			r := NewRemote(cEnd)
			t.Cleanup(func() { _ = r.Close() })
			return r
		}
		fn(t, backendPair{primary: dial(), secondary: dial()})
	})
	t.Run("cluster", func(t *testing.T) {
		// Three served caches behind one hash-partitioned Engine: the
		// whole behavioral contract must be location-transparent across
		// node boundaries too.
		const nNodes = 3
		servers := make([]*rpc.Server, nNodes)
		names := make([]string, nNodes)
		for i := range servers {
			c, err := cache.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			servers[i] = rpc.NewServer(c)
			names[i] = fmt.Sprintf("node%d", i)
		}
		dial := func() Engine {
			clients := make([]*rpc.Client, nNodes)
			for i, srv := range servers {
				cEnd, sEnd := net.Pipe()
				go srv.ServeConn(sEnd)
				clients[i] = rpc.NewClient(cEnd)
			}
			e := clusterFromClients(names, clients)
			t.Cleanup(func() { _ = e.Close() })
			return e
		}
		fn(t, backendPair{primary: dial(), secondary: dial()})
	})
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConformanceTableLifecycle(t *testing.T) {
	forEachBackend(t, Config{}, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (name varchar, v integer)`); err != nil {
			t.Fatal(err)
		}
		schema, err := types.NewSchema("KV", true, 0,
			Column{Name: "k", Type: types.ColVarchar},
			Column{Name: "n", Type: types.ColInt})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.CreateTable(schema); err != nil {
			t.Fatal(err)
		}
		tables, err := e.Tables()
		if err != nil {
			t.Fatal(err)
		}
		got := strings.Join(tables, ",")
		for _, want := range []string{"KV", "S", "Timer"} {
			if !strings.Contains(got, want) {
				t.Errorf("Tables() = %s, missing %s", got, want)
			}
		}
		if err := e.Insert("S", types.Str("a"), types.Int(1)); err != nil {
			t.Fatal(err)
		}
		if err := e.InsertBatch("S", [][]Value{
			{types.Str("b"), types.Int(2)},
			{types.Str("c"), types.Int(3)},
		}); err != nil {
			t.Fatal(err)
		}
		// The persistent table upserts by key — both rows land, the second
		// k=x write wins.
		for _, row := range [][]Value{
			{types.Str("x"), types.Int(10)},
			{types.Str("x"), types.Int(20)},
		} {
			if err := e.Insert("KV", row...); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Exec(`select count(*) from S`)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.Rows[0][0].AsInt(); n != 3 {
			t.Errorf("count(S) = %d, want 3", n)
		}
		res, err = e.Exec(`select n from KV where k = 'x'`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("KV rows = %+v", res.Rows)
		}
		if n, _ := res.Rows[0][0].AsInt(); n != 20 {
			t.Errorf("KV[x] = %d, want 20", n)
		}
	})
}

func TestConformanceWatchOrdering(t *testing.T) {
	const total = 300
	forEachBackend(t, Config{}, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (v integer)`); err != nil {
			t.Fatal(err)
		}
		type tapLog struct {
			mu   sync.Mutex
			seqs []uint64
			vals []int64
		}
		newTap := func() (*tapLog, func(*Event)) {
			l := &tapLog{}
			return l, func(ev *Event) {
				// Events are self-describing on every backend: remote and
				// cluster watches resolve the schema through the
				// connection's describe cache.
				if ev.Schema == nil || ev.Schema.ColIndex("v") != 0 {
					t.Errorf("watch event schema = %+v, want column v", ev.Schema)
				}
				v, err := ev.Field("v")
				if err != nil {
					t.Errorf("Field(v): %v", err)
				}
				n, _ := v.AsInt()
				l.mu.Lock()
				l.seqs = append(l.seqs, ev.Tuple.Seq)
				l.vals = append(l.vals, n)
				l.mu.Unlock()
			}
		}
		logA, fnA := newTap()
		logB, fnB := newTap()
		wa, err := e.Watch("S", fnA)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := e.Watch("S", fnB)
		if err != nil {
			t.Fatal(err)
		}
		if wa.ID() >= 0 || wb.ID() >= 0 || wa.ID() == wb.ID() {
			t.Errorf("watch ids = %d, %d (want distinct negatives)", wa.ID(), wb.ID())
		}
		if wa.Topic() != "S" {
			t.Errorf("watch topic = %q", wa.Topic())
		}
		// Mixed batch sizes: singles and runs must arrive as one
		// interleaving, in commit order, on every tap.
		sent := 0
		for sent < total {
			n := 1 + sent%7
			if sent+n > total {
				n = total - sent
			}
			rows := make([][]Value, n)
			for i := range rows {
				rows[i] = []Value{types.Int(int64(sent + i))}
			}
			if err := e.InsertBatch("S", rows); err != nil {
				t.Fatal(err)
			}
			sent += n
		}
		count := func(l *tapLog) int {
			l.mu.Lock()
			defer l.mu.Unlock()
			return len(l.seqs)
		}
		waitFor(t, 10*time.Second, "watch delivery", func() bool {
			return count(logA) == total && count(logB) == total
		})
		check := func(name string, l *tapLog) {
			l.mu.Lock()
			defer l.mu.Unlock()
			for i := 0; i < total; i++ {
				if l.seqs[i] != uint64(i+1) {
					t.Fatalf("%s: seq[%d] = %d, want %d (per-topic commit order violated)", name, i, l.seqs[i], i+1)
				}
				if l.vals[i] != int64(i) {
					t.Fatalf("%s: val[%d] = %d, want %d", name, i, l.vals[i], i)
				}
			}
		}
		check("tapA", logA)
		check("tapB", logB)
		// A drained, healthy tap reports zero depth and zero drops.
		st, err := wa.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Topic != "S" || st.Depth != 0 || st.Dropped != 0 {
			t.Errorf("watch stats = %+v", st)
		}
		// Close detaches: later commits never reach the callback.
		if err := wa.Close(); err != nil {
			t.Fatal(err)
		}
		if err := wb.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.Insert("S", types.Int(999)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, "watch teardown in stats", func() bool {
			st, err := e.Stats()
			if err != nil {
				return false
			}
			return len(st.Watches) == 0
		})
		if count(logA) != total {
			t.Errorf("tapA saw %d events after Close, want %d", count(logA), total)
		}
	})
}

func TestConformanceRegisterAndEvents(t *testing.T) {
	forEachBackend(t, Config{}, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (v integer)`); err != nil {
			t.Fatal(err)
		}
		a, err := e.Register(`
subscribe r to S;
behavior { if (r.v > 10) send('hot', r.v); }
`)
		if err != nil {
			t.Fatal(err)
		}
		if a.ID() <= 0 {
			t.Fatalf("automaton id = %d", a.ID())
		}
		for _, v := range []int64{5, 50, 7, 70, 2, 20} {
			if err := e.Insert("S", types.Int(v)); err != nil {
				t.Fatal(err)
			}
		}
		var got []int64
		timeout := time.After(10 * time.Second)
		for len(got) < 3 {
			select {
			case vals, ok := <-a.Events():
				if !ok {
					t.Fatalf("events channel closed early; got %v", got)
				}
				if s, _ := vals[0].AsStr(); s != "hot" {
					t.Errorf("vals[0] = %v", vals[0])
				}
				n, _ := vals[1].AsInt()
				got = append(got, n)
			case <-timeout:
				t.Fatalf("timed out; got %v", got)
			}
		}
		if got[0] != 50 || got[1] != 70 || got[2] != 20 {
			t.Errorf("send order = %v, want [50 70 20]", got)
		}
		waitFor(t, 5*time.Second, "automaton stats", func() bool {
			st, err := a.Stats()
			return err == nil && st.Processed == 6 && st.Depth == 0 && st.Dropped == 0
		})
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		// After Close the channel drains and closes; no further sends.
		waitFor(t, 5*time.Second, "events channel close", func() bool {
			select {
			case _, ok := <-a.Events():
				return !ok
			default:
				return false
			}
		})
		waitFor(t, 5*time.Second, "automaton teardown in stats", func() bool {
			st, err := e.Stats()
			return err == nil && len(st.Automata) == 0
		})
	})
}

func TestConformanceAutomatonInboxOptions(t *testing.T) {
	const flood = 5000
	// The engine-wide default inbox is a tiny Fail-policy bound: any
	// automaton left on the defaults is unregistered by the flood, while
	// InboxCapacity(-1) forces this automaton's inbox unbounded — the
	// option must override the default in both directions, across the
	// wire exactly as embedded.
	cfg := Config{AutomatonQueue: 4, AutomatonPolicy: Fail}
	forEachBackend(t, cfg, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (v integer)`); err != nil {
			t.Fatal(err)
		}
		unbounded, err := e.Register(`subscribe r to S; int n; behavior { n += 1; }`, InboxCapacity(-1))
		if err != nil {
			t.Fatal(err)
		}
		doomed, err := e.Register(`subscribe r to S; int n; behavior { n += 1; }`)
		if err != nil {
			t.Fatal(err)
		}
		bounded, err := e.Register(`subscribe r to S; int n; behavior { n += 1; }`,
			InboxCapacity(8), InboxPolicy(DropOldest))
		if err != nil {
			t.Fatal(err)
		}
		rows := make([][]Value, flood)
		for i := range rows {
			rows[i] = []Value{types.Int(int64(i))}
		}
		if err := e.InsertBatch("S", rows); err != nil {
			t.Fatal(err)
		}
		// The unbounded automaton absorbs and processes the whole flood.
		waitFor(t, 20*time.Second, "unbounded automaton to process the flood", func() bool {
			st, err := unbounded.Stats()
			return err == nil && st.Processed == flood && st.Dropped == 0
		})
		// The default-bound Fail automaton overflowed and self-unregistered.
		waitFor(t, 20*time.Second, "Fail-policy automaton teardown", func() bool {
			st, err := e.Stats()
			if err != nil {
				return false
			}
			for _, a := range st.Automata {
				if a.ID == doomed.ID() {
					return false
				}
			}
			return true
		})
		// The DropOldest automaton survived but shed most of the flood.
		waitFor(t, 20*time.Second, "DropOldest automaton to drain", func() bool {
			st, err := bounded.Stats()
			return err == nil && st.Depth == 0 && st.Dropped > 0 &&
				st.Processed+st.Dropped == flood
		})
	})
}

func TestConformanceStatsCounters(t *testing.T) {
	// A deliberately wedged tap: queue 2, DropOldest, callback parked on a
	// gate. Commits flow through the SECOND engine (the primary's delivery
	// path is stalled by design — for Remote that parks the read loop), and
	// the flood must overflow every buffer between commit and callback
	// before the tap's inbox starts shedding; Stats then shows the drops.
	const flood = 8192
	forEachBackend(t, Config{}, func(t *testing.T, p backendPair) {
		e, feeder := p.primary, p.secondary
		if _, err := e.Exec(`create table S (v integer)`); err != nil {
			t.Fatal(err)
		}
		gate := make(chan struct{})
		var gateOnce sync.Once
		release := func() { gateOnce.Do(func() { close(gate) }) }
		defer release()
		w, err := e.Watch("S", func(*Event) { <-gate }, WatchQueue(2), WatchPolicy(DropOldest))
		if err != nil {
			t.Fatal(err)
		}
		rows := make([][]Value, 512)
		for i := range rows {
			rows[i] = []Value{types.Int(int64(i))}
		}
		for sent := 0; sent < flood; sent += len(rows) {
			if err := feeder.InsertBatch("S", rows); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, 30*time.Second, "tap to shed under DropOldest", func() bool {
			st, err := feeder.Stats()
			if err != nil {
				return false
			}
			for _, ws := range st.Watches {
				if ws.ID == w.ID() {
					if ws.Topic != "S" {
						t.Fatalf("stats topic = %q, want S", ws.Topic)
					}
					return ws.Dropped > 0
				}
			}
			return false
		})
		release()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceSentinelErrors(t *testing.T) {
	forEachBackend(t, Config{}, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (v integer)`); err != nil {
			t.Fatal(err)
		}
		expect := func(name string, err, sentinel error) {
			t.Helper()
			if err == nil {
				t.Errorf("%s: expected an error", name)
				return
			}
			if !errors.Is(err, sentinel) {
				t.Errorf("%s: errors.Is(%v, %v) = false", name, err, sentinel)
			}
		}
		expect("insert into missing table",
			e.Insert("Nope", types.Int(1)), ErrNoSuchTable)
		_, err := e.Exec(`select * from Nope`)
		expect("select from missing table", err, ErrNoSuchTable)
		_, err = e.Watch("Nope", func(*Event) {})
		expect("watch on missing topic", err, ErrNoSuchTable)
		_, err = e.Exec(`create table S (v integer)`)
		expect("duplicate create table", err, ErrTableExists)
		expect("wrong arity",
			e.Insert("S", types.Int(1), types.Int(2)), ErrBadSchema)
		expect("uncoercible value",
			e.Insert("S", types.Str("not an int")), ErrBadSchema)
		expect("bad batch row",
			e.InsertBatch("S", [][]Value{{types.Int(1)}, {types.Str("x")}}), ErrBadSchema)
		// A compile error is an error on both backends (no sentinel
		// identity required, but it must not be swallowed).
		if _, err := e.Register(`this is not gapl`); err == nil {
			t.Error("register with bad source should error")
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		expect("insert after close", e.Insert("S", types.Int(1)), ErrClosed)
		_, err = e.Exec(`select * from S`)
		expect("exec after close", err, ErrClosed)
		_, err = e.Watch("S", func(*Event) {})
		expect("watch after close", err, ErrClosed)
		_, err = e.Register(`subscribe r to S; behavior { send(r.v); }`)
		expect("register after close", err, ErrClosed)
		_, err = e.Stats()
		expect("stats after close", err, ErrClosed)
		if err := e.Close(); err != nil {
			t.Errorf("second Close = %v, want nil", err)
		}
	})
}

// TestRemoteWatchTeardownOnConnectionDeath pins the server-side
// bookkeeping: a client that dials, watches, registers and then dies
// abruptly must leave no topic subscriber, no Watch tap and no automaton
// behind — the serve loop's teardown path reclaims everything.
func TestRemoteWatchTeardownOnConnectionDeath(t *testing.T) {
	c, err := cache.New(cache.Config{TimerPeriod: -1, PrintWriter: &strings.Builder{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Exec(`create table S (v integer)`); err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(c)

	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	r := NewRemote(cEnd)

	if _, err := r.Watch("S", func(*Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(`subscribe r to S; behavior { send(r.v); }`); err != nil {
		t.Fatal(err)
	}
	if n := c.Broker().Subscribers("S"); n != 2 {
		t.Fatalf("subscribers = %d, want 2 (tap + automaton)", n)
	}
	if len(c.TapStats()) != 1 || c.Registry().Len() != 1 {
		t.Fatalf("taps = %d, automata = %d", len(c.TapStats()), c.Registry().Len())
	}

	// Kill the transport out from under the client — no graceful unwind.
	_ = cEnd.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if c.Broker().Subscribers("S") == 0 && len(c.TapStats()) == 0 && c.Registry().Len() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("teardown incomplete: subscribers=%d taps=%d automata=%d",
				c.Broker().Subscribers("S"), len(c.TapStats()), c.Registry().Len())
		}
		time.Sleep(time.Millisecond)
	}
	_ = r.Close()
}

// TestRemoteErrorMessagePreserved pins that the wire keeps the
// human-readable message alongside the restored sentinel identity.
func TestRemoteErrorMessagePreserved(t *testing.T) {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	srv := rpc.NewServer(c)
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	r := NewRemote(cEnd)
	t.Cleanup(func() { _ = r.Close() })

	insErr := r.Insert("Phantom", types.Int(1))
	if insErr == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(insErr, ErrNoSuchTable) {
		t.Errorf("errors.Is(_, ErrNoSuchTable) = false for %v", insErr)
	}
	if !strings.Contains(insErr.Error(), "Phantom") {
		t.Errorf("message lost the table name: %v", insErr)
	}
	if !strings.Contains(fmt.Sprintf("%v", insErr), "no such table") {
		t.Errorf("message lost the sentinel text: %v", insErr)
	}
}

// TestConformanceDurableReopen is the reopen-equivalence conformance
// case: an Embedded engine closed cleanly and reopened over the same
// data directory presents identical table contents, continues sequence
// numbers contiguously, and reports its durability counters through the
// same Stats surface every backend shares.
func TestConformanceDurableReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{TimerPeriod: -1, PrintWriter: &strings.Builder{}, DataDir: dir}

	e1, err := NewEmbedded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Exec(`create persistenttable Counters (name varchar(8) primary key, n integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Exec(`create table Events (v integer)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := e1.Insert("Events", types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Insert("Counters", types.Str("a"), types.Int(42)); err != nil {
		t.Fatal(err)
	}
	before, err := e1.Exec(`select name, n from Counters`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEmbedded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e2.Close() })
	after, err := e2.Exec(`select name, n from Counters`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after.Rows) != fmt.Sprint(before.Rows) {
		t.Fatalf("Counters rows changed across reopen: %v -> %v", before.Rows, after.Rows)
	}
	tables, err := e2.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(tables) != "[Counters Events Timer]" {
		t.Fatalf("recovered tables = %v", tables)
	}
	// New commits continue the recovered sequence, observable on a watch.
	var mu sync.Mutex
	var seqs []uint64
	w, err := e2.Watch("Events", func(ev *Event) {
		mu.Lock()
		seqs = append(seqs, ev.Tuple.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := e2.Insert("Events", types.Int(4)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "the post-reopen event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs) == 1
	})
	if seqs[0] != 4 {
		t.Fatalf("post-reopen commit got seq %d, want 4 (continuing 1..3)", seqs[0])
	}
	st, err := e2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil {
		t.Fatal("Stats().Durability is nil on a durable engine")
	}
	if st.Durability.Replayed == 0 {
		t.Fatal("Stats().Durability.Replayed = 0 after recovering 4 rows")
	}
}
