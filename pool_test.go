// Pooled-event path tests at the façade level: the end-to-end lifecycle
// under concurrent load and shedding (run under -race in CI — a pooled
// event touched after its release is a data race the detector sees), and
// the allocation gate pinning that the embedded steady-state insert path
// stays allocation-free per event.
package unicache

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicache/internal/types"
)

// TestPooledLifecycleUnderSheddingLoad drives both backends with event
// pooling on: concurrent producers, DropOldest watch taps and automata
// sized to shed most of the stream, subscribers closed mid-flight, and an
// engine close at the end. Every delivered value must still be coherent —
// a recycled block observed after release would surface as a wrong value
// here or as a race under -race.
func TestPooledLifecycleUnderSheddingLoad(t *testing.T) {
	forEachBackend(t, Config{PoolEvents: true, EphemeralCapacity: 64}, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (src integer, v integer)`); err != nil {
			t.Fatal(err)
		}
		var delivered, bad atomic.Uint64
		check := func(ev *Event) {
			// Touch every value after the callback could have raced with a
			// release: both columns must still hold coherent integers.
			if len(ev.Tuple.Vals) != 2 || ev.Tuple.Vals[0].Kind() != types.KindInt || ev.Tuple.Vals[1].Kind() != types.KindInt {
				bad.Add(1)
			}
			delivered.Add(1)
		}
		// A tiny DropOldest tap: most of the stream is shed at the inbox,
		// exercising the discard-release path concurrently with commits.
		shedding, err := e.Watch("S", check, WatchQueue(4), WatchPolicy(DropOldest))
		if err != nil {
			t.Fatal(err)
		}
		// A roomy tap that sees everything, as the delivery control.
		keeper, err := e.Watch("S", check, WatchQueue(-1))
		if err != nil {
			t.Fatal(err)
		}
		// An automaton with a tiny shedding inbox, reading fields off the
		// delivered (pooled) event inside the VM.
		a, err := e.Register(`subscribe r to S; int n; behavior { n += r.v; if (n % 7 == 0) { send(n); } }`,
			InboxCapacity(4), InboxPolicy(DropOldest))
		if err != nil {
			t.Fatal(err)
		}
		var drain sync.WaitGroup
		drain.Add(1)
		go func() {
			defer drain.Done()
			for range a.Events() {
			}
		}()

		const producers, batches, batchSize = 4, 50, 16
		var wg sync.WaitGroup
		for pr := 0; pr < producers; pr++ {
			wg.Add(1)
			go func(pr int) {
				defer wg.Done()
				rows := make([][]Value, batchSize)
				for i := 0; i < batches; i++ {
					for j := range rows {
						rows[j] = []Value{types.Int(int64(pr)), types.Int(int64(i*batchSize + j))}
					}
					if err := e.InsertBatch("S", rows); err != nil {
						t.Errorf("producer %d: %v", pr, err)
						return
					}
					if i == batches/2 && pr == 0 {
						// Tear a subscriber down mid-stream: its queued
						// events must be released, not leaked or reused.
						_ = shedding.Close()
					}
				}
			}(pr)
		}
		wg.Wait()
		total := uint64(producers * batches * batchSize)
		waitFor(t, 10*time.Second, "keeper tap to drain", func() bool {
			return delivered.Load() >= total // keeper alone must see every event
		})
		if !WaitIdle(e, 10*time.Second) {
			t.Fatal("automata not idle")
		}
		if bad.Load() != 0 {
			t.Fatalf("%d delivered events were incoherent (use-after-release)", bad.Load())
		}
		_ = keeper.Close()
		_ = a.Close()
		drain.Wait()
	})
}

// TestPooledDeliveryRetainContract: a callback that must keep an event past
// its return uses Clone (or Retain); the clone stays valid after the pooled
// original is recycled by later traffic.
func TestPooledDeliveryRetainContract(t *testing.T) {
	forEachBackend(t, Config{PoolEvents: true, EphemeralCapacity: 16}, func(t *testing.T, p backendPair) {
		e := p.primary
		if _, err := e.Exec(`create table S (v integer)`); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var kept []*Event
		w, err := e.Watch("S", func(ev *Event) {
			mu.Lock()
			kept = append(kept, ev.Clone())
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 200 // far past the ring, so early blocks recycle
		for i := 0; i < n; i++ {
			if err := e.Insert("S", types.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, 10*time.Second, "all events delivered", func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(kept) >= n
		})
		mu.Lock()
		defer mu.Unlock()
		for i, ev := range kept {
			if got := ev.Tuple.Vals[0]; got != types.Int(int64(i)) {
				t.Fatalf("kept[%d] = %v, want %d (clone corrupted by recycling)", i, got, i)
			}
		}
		_ = w.Close()
	})
}

// TestSteadyStateInsertAllocFree is the allocation gate: once the
// ephemeral ring has wrapped (so pooled blocks recycle), the embedded
// insert path — commit, sequence, ring store, publish — performs zero heap
// allocations per event. CI runs this without -race and fails the build on
// regression.
func TestSteadyStateInsertAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under -race instrumentation")
	}
	eng, err := NewEmbedded(Config{TimerPeriod: -1, PoolEvents: true, EphemeralCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = eng.Close() }()
	if _, err := eng.Exec(`create table T (src integer, v integer)`); err != nil {
		t.Fatal(err)
	}
	const batchSize = 64
	rows := make([][]Value, batchSize)
	vals := make([]Value, 2*batchSize)
	for i := range rows {
		rows[i] = vals[2*i : 2*i+2]
		rows[i][0] = types.Int(int64(i))
		rows[i][1] = types.Int(int64(i))
	}
	// Warm up: wrap the ring several times so every block in circulation
	// comes from the pool and all scratch buffers reach steady-state size.
	for i := 0; i < 64; i++ {
		if err := eng.InsertBatch("T", rows); err != nil {
			t.Fatal(err)
		}
	}
	// GC off during measurement: a collection mid-run would empty the
	// sync.Pool and charge the refill to the measured path.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var insertErr error
	perBatch := testing.AllocsPerRun(200, func() {
		if err := eng.InsertBatch("T", rows); err != nil {
			insertErr = err
		}
	})
	if insertErr != nil {
		t.Fatal(insertErr)
	}
	if perBatch != 0 {
		t.Errorf("steady-state InsertBatch allocates %.2f times per %d-row batch (%.4f per event), want 0",
			perBatch, batchSize, perBatch/batchSize)
	}
}

// TestSteadyStateSingleInsertAllocs pins the single-row fast path. Insert
// wraps the row in a one-element batch, which is the one remaining
// allocation; the pooled event machinery itself adds none.
func TestSteadyStateSingleInsertAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under -race instrumentation")
	}
	eng, err := NewEmbedded(Config{TimerPeriod: -1, PoolEvents: true, EphemeralCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = eng.Close() }()
	if _, err := eng.Exec(`create table T (v integer)`); err != nil {
		t.Fatal(err)
	}
	row := []Value{types.Int(1)}
	for i := 0; i < 1024; i++ {
		if err := eng.Insert("T", row...); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var insertErr error
	perOp := testing.AllocsPerRun(200, func() {
		if err := eng.Insert("T", row...); err != nil {
			insertErr = err
		}
	})
	if insertErr != nil {
		t.Fatal(insertErr)
	}
	if perOp > 1 {
		t.Errorf("steady-state Insert allocates %.2f times per event, want <= 1 (the batch wrapper)", perOp)
	}
}
