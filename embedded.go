package unicache

import (
	"fmt"
	"sync"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/cache"
)

// Embedded is the in-process Engine backend: a thin façade over an
// internal cache instance. The program owns the cache's goroutines
// directly — commit, dispatch and automaton execution all happen in this
// process — and the façade adds only handle bookkeeping, so the embedded
// hot path is the cache hot path.
type Embedded struct {
	c     *cache.Cache
	owned bool // Close also closes the cache

	// core is what engine calls dispatch into: the cache itself, or a
	// tenant's scoped view for a Tenant() sub-engine — the same seam the
	// RPC server uses, so embedded and remote tenancy share one mechanism.
	core  embeddedCore
	scope *cache.Scoped // non-nil iff this engine is tenant-bound

	mu      sync.Mutex
	closed  bool
	watches map[int64]*embeddedWatch
	autos   map[int64]*embeddedAutomaton
}

// embeddedCore is the cache surface the façade dispatches into, satisfied
// by both *cache.Cache and *cache.Scoped.
type embeddedCore interface {
	Exec(src string) (*Result, error)
	CommitInsert(table string, vals []Value) error
	CommitBatch(table string, rows [][]Value) error
	CreateTable(schema *Schema) error
	Tables() []string
	WatchWith(topic string, fn func(*Event), opts cache.WatchOpts) (int64, error)
	Unsubscribe(id int64)
	WatchStats(id int64) (depth int, dropped uint64, ok bool)
	RegisterWith(source string, sink automaton.Sink, opts automaton.Options) (*automaton.Automaton, error)
	Unregister(id int64) error
	TapStats() []cache.TapStat
	Automata() []*automaton.Automaton
	Durability() (DurabilityStats, bool)
}

var (
	_ Engine       = (*Embedded)(nil)
	_ embeddedCore = (*cache.Cache)(nil)
	_ embeddedCore = (*cache.Scoped)(nil)
)

// NewEmbedded creates an in-process engine over a fresh cache. Closing
// the engine closes the cache.
func NewEmbedded(cfg Config) (*Embedded, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	e := Embed(c)
	e.owned = true
	return e, nil
}

// Embed wraps an existing cache in the Engine façade. The engine does not
// own the cache: Close detaches the handles created through this engine
// but leaves the cache (and subscriptions made directly on it) running.
func Embed(c *cache.Cache) *Embedded {
	return &Embedded{
		c:       c,
		core:    c,
		watches: make(map[int64]*embeddedWatch),
		autos:   make(map[int64]*embeddedAutomaton),
	}
}

// Tenant returns a tenant-scoped engine over the same cache: every table,
// automaton and watch created (or named) through it lives in the tenant's
// namespace, its quotas are enforced, and its Stats report only the
// tenant's resources — the embedded twin of dialing a multi-tenant server
// WithToken. The sub-engine never owns the cache; closing it detaches only
// the handles created through it. It fails unless the cache was built with
// Config.Tenants naming the tenant.
func (e *Embedded) Tenant(name string) (*Embedded, error) {
	if err := e.guard(); err != nil {
		return nil, err
	}
	reg := e.c.TenantRegistry()
	if reg == nil {
		return nil, fmt.Errorf("unicache: %w: engine has no tenants configured", ErrUnauthorized)
	}
	t, ok := reg.Get(name)
	if !ok {
		return nil, fmt.Errorf("unicache: %w: unknown tenant %q", ErrUnauthorized, name)
	}
	s := e.c.Scope(t)
	sub := Embed(e.c)
	sub.core = s
	sub.scope = s
	return sub, nil
}

// Cache exposes the underlying cache for in-process callers that need
// the full internal surface (benchmarks, the daemon). Remote engines
// have no equivalent — code that reaches past the façade is embedded-only
// by construction.
func (e *Embedded) Cache() *cache.Cache { return e.c }

func (e *Embedded) guard() error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("unicache: %w", ErrClosed)
	}
	return nil
}

// Exec implements Engine.
func (e *Embedded) Exec(src string) (*Result, error) {
	if err := e.guard(); err != nil {
		return nil, err
	}
	return e.core.Exec(src)
}

// Insert implements Engine.
func (e *Embedded) Insert(table string, vals ...Value) error {
	if err := e.guard(); err != nil {
		return err
	}
	return e.core.CommitInsert(table, vals)
}

// InsertBatch implements Engine.
func (e *Embedded) InsertBatch(table string, rows [][]Value) error {
	if err := e.guard(); err != nil {
		return err
	}
	return e.core.CommitBatch(table, rows)
}

// CreateTable implements Engine.
func (e *Embedded) CreateTable(schema *Schema) error {
	if err := e.guard(); err != nil {
		return err
	}
	return e.core.CreateTable(schema)
}

// Tables implements Engine.
func (e *Embedded) Tables() ([]string, error) {
	if err := e.guard(); err != nil {
		return nil, err
	}
	return e.core.Tables(), nil
}

// Watch implements Engine: the callback runs on the tap's dispatcher
// goroutine in commit order.
func (e *Embedded) Watch(topic string, fn func(*Event), opts ...WatchOption) (Watch, error) {
	if err := e.guard(); err != nil {
		return nil, err
	}
	o := applyWatchOptions(opts)
	id, err := e.core.WatchWith(topic, fn, cache.WatchOpts{Queue: o.queue, Policy: o.policy})
	if err != nil {
		return nil, err
	}
	w := &embeddedWatch{e: e, id: id, topic: topic}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.core.Unsubscribe(id)
		return nil, fmt.Errorf("unicache: %w", ErrClosed)
	}
	e.watches[id] = w
	e.mu.Unlock()
	return w, nil
}

// Register implements Engine.
func (e *Embedded) Register(source string, opts ...AutomatonOption) (Automaton, error) {
	if err := e.guard(); err != nil {
		return nil, err
	}
	o := applyAutomatonOptions(opts)
	h := &embeddedAutomaton{e: e, events: make(chan []Value, o.eventBuffer)}
	a, err := e.core.RegisterWith(source, h.deliver, automaton.Options{
		InboxCapacity: o.inboxCapacity,
		InboxPolicy:   o.inboxPolicy,
	})
	if err != nil {
		return nil, err
	}
	h.a = a
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = e.core.Unregister(a.ID())
		close(h.events)
		return nil, fmt.Errorf("unicache: %w", ErrClosed)
	}
	e.autos[a.ID()] = h
	e.mu.Unlock()
	return h, nil
}

// Stats implements Engine: every live tap and automaton on the cache,
// not only the ones registered through this façade — the same operator
// view a Remote engine's Stats gives of its server.
func (e *Embedded) Stats() (Stats, error) {
	if err := e.guard(); err != nil {
		return Stats{}, err
	}
	var st Stats
	for _, t := range e.core.TapStats() {
		st.Watches = append(st.Watches, SubscriptionStats{
			ID: t.ID, Topic: t.Topic, Depth: t.Depth, Dropped: t.Dropped,
		})
	}
	for _, a := range e.core.Automata() {
		st.Automata = append(st.Automata, AutomatonStats{
			ID: a.ID(), Depth: a.Depth(), Dropped: a.Dropped(), Processed: a.Processed(),
		})
	}
	if dur, ok := e.core.Durability(); ok {
		st.Durability = &dur
	}
	if e.scope != nil {
		ts := e.scope.TenantStats()
		st.Tenant = &ts
	} else {
		st.Tenants = e.c.TenantStatsAll()
	}
	return st, nil
}

// WaitIdle answers the package-level WaitIdle helper from the registry's
// precise idle test (empty inboxes, no behaviour clause in flight).
func (e *Embedded) WaitIdle(timeout time.Duration) bool {
	return e.c.Registry().WaitIdle(timeout)
}

// Close implements Engine: detaches every handle created through this
// engine, then (for NewEmbedded engines) closes the cache itself.
func (e *Embedded) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	watches := make([]*embeddedWatch, 0, len(e.watches))
	for _, w := range e.watches {
		watches = append(watches, w)
	}
	autos := make([]*embeddedAutomaton, 0, len(e.autos))
	for _, a := range e.autos {
		autos = append(autos, a)
	}
	e.watches, e.autos = nil, nil
	e.mu.Unlock()
	for _, w := range watches {
		w.detach()
	}
	for _, a := range autos {
		a.detach()
	}
	if e.owned {
		e.c.Close()
	}
	return nil
}

// embeddedWatch is a Watch handle over a cache tap.
type embeddedWatch struct {
	e     *Embedded
	id    int64
	topic string
	once  sync.Once
}

func (w *embeddedWatch) ID() int64     { return w.id }
func (w *embeddedWatch) Topic() string { return w.topic }

func (w *embeddedWatch) Stats() (SubscriptionStats, error) {
	depth, dropped, ok := w.e.core.WatchStats(w.id)
	if !ok {
		return SubscriptionStats{}, fmt.Errorf("unicache: watch %d: %w", w.id, ErrClosed)
	}
	return SubscriptionStats{ID: w.id, Topic: w.topic, Depth: depth, Dropped: dropped}, nil
}

func (w *embeddedWatch) Close() error {
	w.once.Do(func() {
		w.e.mu.Lock()
		if w.e.watches != nil {
			delete(w.e.watches, w.id)
		}
		w.e.mu.Unlock()
		w.e.core.Unsubscribe(w.id)
	})
	return nil
}

// detach is Close minus the map bookkeeping (the engine's Close already
// emptied the maps).
func (w *embeddedWatch) detach() {
	w.once.Do(func() { w.e.core.Unsubscribe(w.id) })
}

// embeddedAutomaton is an Automaton handle over a registered automaton.
type embeddedAutomaton struct {
	e      *Embedded
	a      *automaton.Automaton
	events chan []Value
	once   sync.Once
}

// deliver is the automaton's sink: it hands each send() to the Events
// channel, shedding the oldest buffered notification when the
// application is not draining — the automaton must never stall on its
// own reporting channel. Sends arrive from one goroutine at a time (the
// automaton's dispatcher, or the registering goroutine during the
// initialization clause), so the drop-then-retry loop terminates.
func (h *embeddedAutomaton) deliver(vals []Value) error {
	for {
		select {
		case h.events <- vals:
			return nil
		default:
		}
		select {
		case <-h.events:
		default:
		}
	}
}

func (h *embeddedAutomaton) ID() int64              { return h.a.ID() }
func (h *embeddedAutomaton) Events() <-chan []Value { return h.events }

func (h *embeddedAutomaton) Stats() (AutomatonStats, error) {
	return AutomatonStats{
		ID:        h.a.ID(),
		Depth:     h.a.Depth(),
		Dropped:   h.a.Dropped(),
		Processed: h.a.Processed(),
	}, nil
}

func (h *embeddedAutomaton) Close() error {
	h.once.Do(func() {
		h.e.mu.Lock()
		if h.e.autos != nil {
			delete(h.e.autos, h.a.ID())
		}
		h.e.mu.Unlock()
		_ = h.e.core.Unregister(h.a.ID())
		// Unregister waits for the dispatcher to exit, so the sink can
		// never run again: closing the channel here is race-free.
		close(h.events)
	})
	return nil
}

func (h *embeddedAutomaton) detach() {
	h.once.Do(func() {
		_ = h.e.core.Unregister(h.a.ID())
		close(h.events)
	})
}
