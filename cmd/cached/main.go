// Command cached runs the unified publish/subscribe cache as a network
// daemon: a centralised, topic-based cache that applications talk to over
// the RPC mechanism (create tables, insert tuples, run ad hoc selects,
// register automata).
//
// Usage:
//
//	cached -addr :7654 -init schema.sql -timer 1s
//	cached -init schema.sql -load Flows=flows.csv -load Links=links.csv
//
// The init file holds one SQL statement per line (or separated by blank
// lines); '#' and '--' comments are ignored. It typically creates the
// tables the deployment needs, exactly like the paper's cache
// initialization from a configuration file (§4.2). Each -load flag then
// bulk-loads a CSV file (cachectl-load format, see internal/csvload)
// straight into a table through the embedded batch-commit path, in bounded
// chunks — no RPC hop, no whole-file buffering — before the daemon starts
// accepting connections.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unicache/internal/cache"
	"unicache/internal/csvload"
	"unicache/internal/pubsub"
	"unicache/internal/rpc"
	"unicache/internal/tenant"
	"unicache/internal/types"
	"unicache/internal/uerr"
	"unicache/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "listen address")
	initFile := flag.String("init", "", "SQL file executed at startup (table definitions)")
	timer := flag.Duration("timer", time.Second, "Timer topic period (0 disables)")
	ringCap := flag.Int("ring", 0, "ephemeral table ring-buffer capacity (0 = default)")
	autoCreate := flag.Bool("auto-create-streams", false,
		"create streams on the fly when automata publish to unknown topics (§8 extension)")
	autoQueue := flag.Int("automaton-queue", 0,
		"bound each automaton's inbox to this many events (0 = unbounded)")
	autoPolicy := flag.String("automaton-policy", "block",
		"overflow policy for bounded automaton inboxes: block, dropoldest or fail")
	dataDir := flag.String("data", "",
		"data directory for the write-ahead log; empty runs in-memory, a path makes every commit durable and replays it on restart")
	walNoSync := flag.Bool("wal-nosync", false,
		"write the WAL without fsync (fast, survives process crashes but not power loss)")
	snapshotBytes := flag.Int64("snapshot-bytes", 0,
		"per-domain WAL bytes that trigger a snapshot + log truncation (0 = default 8 MiB)")
	checkpoint := flag.Duration("checkpoint", 0,
		"period between automaton-state checkpoints on a durable cache (0 = default 30s, negative disables)")
	fsyncPolicy := flag.String("fsync-error-policy", "poison",
		"what a failed WAL fsync does: poison latches the domain until restart; latch-retry additionally tries to restore it by snapshotting past the suspect segment")
	tenantsFile := flag.String("tenants", "",
		"tenants.json declaring tenant names, tokens and quotas; when set, every connection must authenticate and sees only its tenant's namespace")
	var loads loadSpecs
	flag.Var(&loads, "load", "bulk-load a CSV file into a table at startup, as table=file.csv (repeatable)")
	flag.Parse()

	policy, err := parsePolicy(*autoPolicy)
	if err != nil {
		fail(err)
	}
	fsp, err := parseFsyncPolicy(*fsyncPolicy)
	if err != nil {
		fail(err)
	}
	var tenants *tenant.Registry
	if *tenantsFile != "" {
		if tenants, err = tenant.Load(*tenantsFile); err != nil {
			fail(err)
		}
	}
	period := *timer
	if period == 0 {
		period = -1
	}
	c, err := cache.New(cache.Config{
		TimerPeriod:       period,
		EphemeralCapacity: *ringCap,
		AutoCreateStreams: *autoCreate,
		AutomatonQueue:    *autoQueue,
		AutomatonPolicy:   policy,
		DataDir:           *dataDir,
		WALNoSync:         *walNoSync,
		SnapshotBytes:     *snapshotBytes,
		CheckpointPeriod:  *checkpoint,
		FsyncErrorPolicy:  fsp,
		Tenants:           tenants,
	})
	if err != nil {
		fail(err)
	}
	defer c.Close()
	if dur, ok := c.Durability(); ok {
		fmt.Printf("durable: %s (%d record(s) replayed", dur.Dir, dur.Replayed)
		if dur.TornTails > 0 {
			fmt.Printf(", %d torn log tail(s) repaired", dur.TornTails)
		}
		fmt.Println(")")
	}

	if *initFile != "" {
		if err := execInitFile(c, *initFile); err != nil {
			fail(err)
		}
	}
	for _, spec := range loads {
		if err := loadCSV(c, spec); err != nil {
			fail(err)
		}
	}

	srv := rpc.NewServer(c)
	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Println("shutting down")
		_ = srv.Close()
	}()

	if tenants != nil {
		fmt.Printf("multi-tenant: %d tenant(s); connections must authenticate\n", tenants.Len())
	}
	fmt.Printf("cached listening on %s (tables: %s)\n", *addr, strings.Join(c.Tables(), ", "))
	if err := srv.ListenAndServe(*addr); err != nil {
		fail(err)
	}
}

func execInitFile(c *cache.Cache, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, stmt := range splitStatements(string(data)) {
		if _, err := c.Exec(stmt); err != nil {
			// A durable restart recovers its tables from the data
			// directory before the init file runs; the file's create
			// statements are then no-ops, not failures.
			if errors.Is(err, uerr.ErrTableExists) {
				continue
			}
			return fmt.Errorf("init %s: %w", path, err)
		}
	}
	return nil
}

// splitStatements splits an init file into statements: semicolon-separated,
// with '#' and '--' line comments removed.
func splitStatements(src string) []string {
	var lines []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		lines = append(lines, line)
	}
	var out []string
	for _, stmt := range strings.Split(strings.Join(lines, "\n"), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt != "" {
			out = append(out, stmt)
		}
	}
	return out
}

// loadSpecs collects repeated -load table=file.csv flags in order.
type loadSpecs []string

func (l *loadSpecs) String() string     { return strings.Join(*l, ",") }
func (l *loadSpecs) Set(s string) error { *l = append(*l, s); return nil }

// loadCSV bulk-loads one table=file.csv spec through the embedded
// batch-commit path in bounded chunks, so startup loads of any size run in
// constant memory with batch-granularity commits (and publications), the
// same shape `cachectl load` produces over the streaming RPC path.
func loadCSV(c *cache.Cache, spec string) error {
	table, path, ok := strings.Cut(spec, "=")
	if !ok || table == "" || path == "" {
		return fmt.Errorf("-load wants table=file.csv, got %q", spec)
	}
	res, err := c.Exec("describe " + table)
	if err != nil {
		return fmt.Errorf("load %s: %w", spec, err)
	}
	colTypes := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		colTypes[i] = row[1].String()
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("load %s: %w", spec, err)
	}
	defer func() { _ = f.Close() }()
	const chunkRows = 4096
	chunk := make([][]types.Value, 0, chunkRows)
	commit := func() error {
		if len(chunk) == 0 {
			return nil
		}
		err := c.CommitBatch(table, chunk)
		chunk = chunk[:0]
		return err
	}
	n, err := csvload.Load(f, colTypes, func(vals []types.Value) error {
		chunk = append(chunk, vals)
		if len(chunk) == chunkRows {
			return commit()
		}
		return nil
	})
	if err == nil {
		err = commit()
	}
	if err != nil {
		return fmt.Errorf("load %s: %w", spec, err)
	}
	fmt.Printf("loaded %d row(s) into %s from %s\n", n, table, path)
	return nil
}

// parseFsyncPolicy maps the -fsync-error-policy flag to the WAL knob.
func parseFsyncPolicy(s string) (wal.FsyncErrorPolicy, error) {
	switch s {
	case "poison":
		return wal.FsyncPoison, nil
	case "latch-retry":
		return wal.FsyncLatchRetry, nil
	}
	return 0, fmt.Errorf("unknown fsync error policy %q (want poison or latch-retry)", s)
}

// parsePolicy maps a flag value to a pubsub overflow policy.
func parsePolicy(s string) (pubsub.Policy, error) {
	for _, p := range []pubsub.Policy{pubsub.Block, pubsub.DropOldest, pubsub.Fail} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown overflow policy %q (want block, dropoldest or fail)", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cached:", err)
	os.Exit(1)
}
