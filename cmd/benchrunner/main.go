// Command benchrunner regenerates the paper's evaluation artefacts
// (§6, Figs. 7, 9, 10, 12, 13, 15, 16 and 18). Each experiment prints the
// same rows/series the paper reports.
//
// Usage:
//
//	benchrunner -exp all            # every experiment, paper-scale
//	benchrunner -exp fig18 -quick   # one experiment, scaled down
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"unicache/internal/experiments"
	"unicache/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig7|fig9|fig10|fig12|fig13|fig15|fig16|fig18|all")
	quick := flag.Bool("quick", false, "scaled-down parameters (seconds instead of minutes)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	run("fig7", func() error { return runFig7(*quick) })
	run("fig9", func() error { return runFig9(*quick) })
	run("fig10", func() error { return runFig10(*quick) })
	run("fig12", func() error { return runFig12(*quick) })
	run("fig13", func() error { return runFig13(*quick) })
	run("fig15", func() error { return runFig15(*quick, *seed) })
	run("fig16", func() error { return runFig16(*quick, *seed) })
	run("fig18", func() error { return runFig18(*quick, *seed) })
}

func runFig7(quick bool) error {
	cfg := experiments.Fig7Config{Iterations: 100_000, Rounds: 30}
	if quick {
		cfg = experiments.Fig7Config{Iterations: 10_000, Rounds: 5}
	}
	rows, err := experiments.Fig7(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Execution cost of built-in functions (µs per invocation)")
	fmt.Printf("%-12s %10s %10s %10s %10s %10s  %s\n",
		"built-in", "min", "p25", "p50", "p75", "max", "samples")
	for _, r := range rows {
		fmt.Printf("%-12s %10.4f %10.4f %10.4f %10.4f %10.4f  %d\n",
			r.Builtin, r.Cost.Min, r.Cost.P25, r.Cost.P50, r.Cost.P75, r.Cost.Max, r.Samples)
	}
	return nil
}

func delayTable(rows []experiments.DelayResult) {
	fmt.Printf("%-10s %-10s %10s %10s %10s %10s\n",
		"automata", "Δt", "mean(ms)", "σ(ms)", "min(ms)", "max(ms)")
	for _, r := range rows {
		fmt.Printf("%-10d %-10s %10.4f %10.4f %10.4f %10.4f\n",
			r.Config.Automata, r.Config.Interarrival, r.MeanMs, r.StdMs, r.MinMs, r.MaxMs)
	}
}

func runFig9(quick bool) error {
	events, batch := 1000, 125
	if quick {
		events, batch = 400, 50
	}
	rows, err := experiments.Fig9(nil, 8*time.Millisecond, events, batch)
	if err != nil {
		return err
	}
	fmt.Println("Delay vs. #automata (Δt = 8 ms)")
	delayTable(rows)
	return nil
}

func runFig10(quick bool) error {
	events, batch := 1000, 125
	if quick {
		events, batch = 400, 50
	}
	rows, err := experiments.Fig10(nil, 4, events, batch)
	if err != nil {
		return err
	}
	fmt.Println("Delay vs. event inter-arrival (4 automata)")
	delayTable(rows)
	return nil
}

func stressTable(rows []experiments.StressResult, label func(experiments.StressConfig) string) {
	fmt.Printf("%-12s %-8s %12s %12s %10s\n", label(experiments.StressConfig{}), "mode", "inserts", "inserts/s", "echoed")
	for _, r := range rows {
		mode := "1-way"
		if r.Config.TwoWay {
			mode = "2-way"
		}
		fmt.Printf("%-12s %-8s %12d %12.0f %10d\n",
			label(r.Config), mode, r.Inserts, r.InsertsPerSec, r.Echoed)
	}
}

func runFig12(quick bool) error {
	dur := 2 * time.Second
	if quick {
		dur = 300 * time.Millisecond
	}
	rows, err := experiments.Fig12(nil, dur)
	if err != nil {
		return err
	}
	fmt.Println("Integer stress test: inserts/sec vs. #integer attributes")
	stressTable(rows, func(c experiments.StressConfig) string {
		if c.IntAttrs == 0 {
			return "#attrs"
		}
		return fmt.Sprint(c.IntAttrs)
	})
	return nil
}

func runFig13(quick bool) error {
	dur := 2 * time.Second
	if quick {
		dur = 300 * time.Millisecond
	}
	rows, err := experiments.Fig13(nil, dur)
	if err != nil {
		return err
	}
	fmt.Println("Character string stress test: inserts/sec vs. buffer size (RPC fragments at 1024 B)")
	stressTable(rows, func(c experiments.StressConfig) string {
		if c.StrLen == 0 {
			return "bytes"
		}
		return fmt.Sprint(c.StrLen)
	})
	return nil
}

func runFig15(quick bool, seed int64) error {
	requests, hosts := workload.HTTPRequests, workload.HTTPHosts
	if quick {
		requests, hosts = 50_000, 2000
	}
	rows := experiments.Fig15(seed, requests, hosts)
	fmt.Printf("Requests per Web page by popularity (%d requests, %d distinct hosts)\n",
		requests, len(rows))
	fmt.Printf("%-8s %10s\n", "rank", "#requests")
	// Log-spaced ranks, like the paper's log-log plot.
	printed := map[int]bool{}
	for _, rank := range []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000} {
		if rank <= len(rows) && !printed[rank] {
			fmt.Printf("%-8d %10d\n", rank, rows[rank-1].Requests)
			printed[rank] = true
		}
	}
	fmt.Printf("%-8d %10d\n", len(rows), rows[len(rows)-1].Requests)
	return nil
}

func runFig16(quick bool, seed int64) error {
	cfg := experiments.Fig16Config{
		Seed:     seed,
		Requests: workload.HTTPRequests,
		Ks:       []int{10, 20, 50, 100, 200, 500, 1000},
	}
	if quick {
		cfg.Requests = 30_000
		cfg.Ks = []int{10, 100, 1000}
	}
	rows, err := experiments.Fig16(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Coefficient of variation of per-event cost: imperative vs. built-in frequent")
	fmt.Printf("%-8s %14s %14s %14s %14s\n", "k", "imperative CV", "built-in CV", "imp mean(µs)", "blt mean(µs)")
	for _, r := range rows {
		fmt.Printf("%-8d %14.3f %14.3f %14.4f %14.4f\n",
			r.K, r.ImperativeCV, r.BuiltinCV, r.ImperativeUs, r.BuiltinUs)
	}
	return nil
}

func runFig18(quick bool, seed int64) error {
	cfg := experiments.Fig18Config{Seed: seed, Events: workload.StockEvents, Symbols: 50}
	if quick {
		cfg.Events = 20_000
	}
	rows, err := experiments.Fig18(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Benchmarking against Cayuga (%d stock events, %d symbols)\n", cfg.Events, cfg.Symbols)
	fmt.Printf("%-6s %12s %12s %10s %14s %14s\n",
		"query", "cache(s)", "cayuga(s)", "speedup", "cache matches", "cayuga matches")
	for _, r := range rows {
		fmt.Printf("%-6s %12.3f %12.3f %9.1fx %14d %14d\n",
			r.Query, r.CacheSec, r.CayugaSec, r.Speedup, r.CacheMatches, r.CayugaMatches)
	}
	return nil
}
