// Command loadgen drives the façade-level load harness (internal/loadgen)
// against the embedded and remote backends and prints one markdown table:
// the same workload grid, through the same public Engine API, measured on
// both sides of the location-transparency line. The remote backend is a
// real cached server on a TCP loopback listener, so its rows carry the
// full RPC stack — framing, batching, push delivery.
//
// Usage:
//
//	loadgen                 # full grid, both backends
//	loadgen -quick          # CI smoke: tiny event counts
//	loadgen -backend remote # one backend only
//	loadgen -pool=false     # disable event pooling, for before/after rows
//	loadgen -cluster 3      # grid against a 3-node loopback cluster
//
// -cluster n replaces the backend grid with a partitioned cluster of n
// in-process cached nodes on TCP loopback listeners, driven through
// unicache.Cluster — the row label is "cluster<n>". Comparing -cluster 1
// against -cluster 3 on a multi-topic workload shows how throughput moves
// as topics spread across nodes.
//
// -tenants n replaces the grid with a fairness check: one multi-tenant
// cached on a loopback listener, n authenticated connections (tenants
// t0..t(n-1)) each driving the full workload concurrently through their
// own namespace. One row per tenant, labelled "tenant<i>/<n>" — near-equal
// events/sec across the rows means the namespacing layer shares the cache
// fairly. The allocs/event column is process-wide, so under concurrent
// tenants it reports the sum across all of them.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"

	"unicache"
	"unicache/internal/cache"
	"unicache/internal/loadgen"
	"unicache/internal/rpc"
	"unicache/internal/tenant"
)

func main() {
	quick := flag.Bool("quick", false, "run the smoke-sized grid (CI)")
	events := flag.Int("events", 0, "override total events per workload")
	backend := flag.String("backend", "both", "embedded, remote or both")
	pool := flag.Bool("pool", true, "enable event pooling in the cache under test")
	vmOnly := flag.Bool("vm", false, "force the bytecode interpreter for automata (disable closure compilation)")
	cluster := flag.Int("cluster", 0, "measure an n-node loopback cluster instead of the embedded/remote grid")
	tenants := flag.Int("tenants", 0, "run the grid as n concurrent tenants of one multi-tenant cached (fairness check)")
	flag.Parse()
	switch *backend {
	case "embedded", "remote", "both":
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown backend %q (want embedded, remote or both)\n", *backend)
		os.Exit(2)
	}

	workloads := loadgen.DefaultWorkloads()
	if *quick {
		workloads = loadgen.QuickWorkloads()
	}
	if *events > 0 {
		for i := range workloads {
			workloads[i].Events = *events
		}
	}

	cfg := cache.Config{TimerPeriod: -1, PoolEvents: *pool}
	if *vmOnly {
		cfg.CompileMode = unicache.ModeVM
	}

	var results []loadgen.Result
	if *tenants > 0 {
		for _, w := range workloads {
			rs, err := runTenants(w, cfg, *tenants)
			if err != nil {
				fail(err)
			}
			results = append(results, rs...)
		}
		fmt.Print(loadgen.Table(results))
		return
	}
	if *cluster > 0 {
		for _, w := range workloads {
			r, err := runCluster(w, cfg, *cluster)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
		fmt.Print(loadgen.Table(results))
		return
	}
	for _, w := range workloads {
		if *backend != "remote" {
			r, err := runEmbedded(w, cfg)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
		if *backend != "embedded" {
			r, err := runRemote(w, cfg)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	}
	fmt.Print(loadgen.Table(results))
}

// runEmbedded measures one workload on a fresh in-process engine.
func runEmbedded(w loadgen.Workload, cfg cache.Config) (loadgen.Result, error) {
	eng, err := unicache.NewEmbedded(cfg)
	if err != nil {
		return loadgen.Result{}, err
	}
	defer func() { _ = eng.Close() }()
	return loadgen.Run(eng, "embedded", w)
}

// runRemote measures one workload through a fresh cached server on a TCP
// loopback listener — the whole RPC stack in the measured path.
func runRemote(w loadgen.Workload, cfg cache.Config) (loadgen.Result, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return loadgen.Result{}, err
	}
	defer c.Close()
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	eng, err := unicache.DialRemote(ln.Addr().String())
	if err != nil {
		return loadgen.Result{}, err
	}
	defer func() { _ = eng.Close() }()
	return loadgen.Run(eng, "remote", w)
}

// runCluster measures one workload through n fresh cached nodes on TCP
// loopback listeners behind one unicache.Cluster engine — consistent-hash
// routing, per-node batching and cross-node stat merging all inside the
// measured path.
func runCluster(w loadgen.Workload, cfg cache.Config, n int) (loadgen.Result, error) {
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cfg)
		if err != nil {
			return loadgen.Result{}, err
		}
		defer c.Close()
		srv := rpc.NewServer(c)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Result{}, err
		}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
		addrs[i] = ln.Addr().String()
	}
	eng, err := unicache.Cluster(addrs...)
	if err != nil {
		return loadgen.Result{}, err
	}
	defer func() { _ = eng.Close() }()
	return loadgen.Run(eng, fmt.Sprintf("cluster%d", n), w)
}

// runTenants measures one workload run concurrently by n tenants of a
// single multi-tenant cached on a loopback listener. Each tenant dials its
// own authenticated connection and drives the full workload in its own
// namespace — the table names collide only apparently; the tenant prefix
// keeps them disjoint. The returned rows (one per tenant) expose fairness:
// with identical workloads, events/sec should be near-equal across tenants.
func runTenants(w loadgen.Workload, cfg cache.Config, n int) ([]loadgen.Result, error) {
	specs := make([]tenant.Spec, n)
	for i := range specs {
		specs[i] = tenant.Spec{Name: fmt.Sprintf("t%d", i), Token: fmt.Sprintf("tok%d", i)}
	}
	reg, err := tenant.NewRegistry(specs...)
	if err != nil {
		return nil, err
	}
	cfg.Tenants = reg
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	results := make([]loadgen.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, err := unicache.DialRemote(ln.Addr().String(),
				unicache.WithToken(specs[i].Token))
			if err != nil {
				errs[i] = err
				return
			}
			defer func() { _ = eng.Close() }()
			results[i], errs[i] = loadgen.Run(eng, fmt.Sprintf("tenant%d/%d", i, n), w)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
