// Command loadgen drives the façade-level load harness (internal/loadgen)
// against the embedded and remote backends and prints one markdown table:
// the same workload grid, through the same public Engine API, measured on
// both sides of the location-transparency line. The remote backend is a
// real cached server on a TCP loopback listener, so its rows carry the
// full RPC stack — framing, batching, push delivery.
//
// Usage:
//
//	loadgen                 # full grid, both backends
//	loadgen -quick          # CI smoke: tiny event counts
//	loadgen -backend remote # one backend only
//	loadgen -pool=false     # disable event pooling, for before/after rows
//	loadgen -cluster 3      # grid against a 3-node loopback cluster
//
// -cluster n replaces the backend grid with a partitioned cluster of n
// in-process cached nodes on TCP loopback listeners, driven through
// unicache.Cluster — the row label is "cluster<n>". Comparing -cluster 1
// against -cluster 3 on a multi-topic workload shows how throughput moves
// as topics spread across nodes.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"unicache"
	"unicache/internal/cache"
	"unicache/internal/loadgen"
	"unicache/internal/rpc"
)

func main() {
	quick := flag.Bool("quick", false, "run the smoke-sized grid (CI)")
	events := flag.Int("events", 0, "override total events per workload")
	backend := flag.String("backend", "both", "embedded, remote or both")
	pool := flag.Bool("pool", true, "enable event pooling in the cache under test")
	vmOnly := flag.Bool("vm", false, "force the bytecode interpreter for automata (disable closure compilation)")
	cluster := flag.Int("cluster", 0, "measure an n-node loopback cluster instead of the embedded/remote grid")
	flag.Parse()
	switch *backend {
	case "embedded", "remote", "both":
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown backend %q (want embedded, remote or both)\n", *backend)
		os.Exit(2)
	}

	workloads := loadgen.DefaultWorkloads()
	if *quick {
		workloads = loadgen.QuickWorkloads()
	}
	if *events > 0 {
		for i := range workloads {
			workloads[i].Events = *events
		}
	}

	cfg := cache.Config{TimerPeriod: -1, PoolEvents: *pool}
	if *vmOnly {
		cfg.CompileMode = unicache.ModeVM
	}

	var results []loadgen.Result
	if *cluster > 0 {
		for _, w := range workloads {
			r, err := runCluster(w, cfg, *cluster)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
		fmt.Print(loadgen.Table(results))
		return
	}
	for _, w := range workloads {
		if *backend != "remote" {
			r, err := runEmbedded(w, cfg)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
		if *backend != "embedded" {
			r, err := runRemote(w, cfg)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	}
	fmt.Print(loadgen.Table(results))
}

// runEmbedded measures one workload on a fresh in-process engine.
func runEmbedded(w loadgen.Workload, cfg cache.Config) (loadgen.Result, error) {
	eng, err := unicache.NewEmbedded(cfg)
	if err != nil {
		return loadgen.Result{}, err
	}
	defer func() { _ = eng.Close() }()
	return loadgen.Run(eng, "embedded", w)
}

// runRemote measures one workload through a fresh cached server on a TCP
// loopback listener — the whole RPC stack in the measured path.
func runRemote(w loadgen.Workload, cfg cache.Config) (loadgen.Result, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return loadgen.Result{}, err
	}
	defer c.Close()
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	eng, err := unicache.DialRemote(ln.Addr().String())
	if err != nil {
		return loadgen.Result{}, err
	}
	defer func() { _ = eng.Close() }()
	return loadgen.Run(eng, "remote", w)
}

// runCluster measures one workload through n fresh cached nodes on TCP
// loopback listeners behind one unicache.Cluster engine — consistent-hash
// routing, per-node batching and cross-node stat merging all inside the
// measured path.
func runCluster(w loadgen.Workload, cfg cache.Config, n int) (loadgen.Result, error) {
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := cache.New(cfg)
		if err != nil {
			return loadgen.Result{}, err
		}
		defer c.Close()
		srv := rpc.NewServer(c)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Result{}, err
		}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
		addrs[i] = ln.Addr().String()
	}
	eng, err := unicache.Cluster(addrs...)
	if err != nil {
		return loadgen.Result{}, err
	}
	defer func() { _ = eng.Close() }()
	return loadgen.Run(eng, fmt.Sprintf("cluster%d", n), w)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
