// Command crashtest is the crash-recovery harness for the durable cache:
// it SIGKILLs a cached daemon in the middle of a streaming load and
// proves that restart recovers exactly the acked prefix — no lost
// commits, no phantoms, no sequence reuse — and that the recovered state
// converges back to a crash-free control run.
//
// The harness runs two servers over the same generated CSV:
//
//	control: load everything, shut down cleanly, dump the table.
//	crash:   start loading through `cachectl load`, SIGKILL the server at
//	         a random moment mid-stream, restart it on the same -data
//	         directory, then check the recovered prefix and reload the
//	         full CSV (the persistent table upserts, so the reload is
//	         idempotent) and compare the dump with the control's.
//
// After the crash restart it asserts:
//
//   - COUNT(KV) equals the recovered sequence high-water mark (every
//     acked commit is present exactly once: contiguous from 1),
//   - the recovered rows are exactly the CSV's first seq lines (the
//     prefix property, checked row by row),
//   - the automaton registered before the kill is running again
//     (recovered from the meta log, observable via server stats and by
//     its side effects on a mirror table),
//   - after the idempotent reload, the KV dump is identical to the
//     crash-free control dump.
//
// A third phase proves periodic checkpoints: a CEP pattern automaton
// holding a half-completed sequence match is SIGKILLed after a
// -checkpoint interval elapses (no clean shutdown snapshot runs), and on
// restart the recovered partial completes when the second half of the
// sequence arrives — the partial-match state a crash can lose is bounded
// by the checkpoint period, not by the last clean shutdown.
//
// Usage: crashtest [-rows N] [-seed S] [-keep] (builds nothing itself;
// scripts/crash_recovery.sh builds the binaries and runs this).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"unicache"
	"unicache/internal/types"
)

const schemaSQL = `
create persistenttable KV (k varchar(16) primary key, n integer);
create persistenttable Mirror (name varchar(8) primary key, n integer);
`

// mirrorGAPL counts every KV commit into the Mirror table; its presence
// and liveness after the crash proves automata recover.
const mirrorGAPL = `
subscribe r to KV;
associate m with Mirror;
int n;
identifier key;
behavior {
	n += 1;
	key = Identifier('count');
	insert(m, key, Sequence('count', n));
}
`

var (
	cachedBin   = flag.String("cached", "cached", "path to the cached binary")
	cachectlBin = flag.String("cachectl", "cachectl", "path to the cachectl binary")
	rows        = flag.Int("rows", 100000, "CSV rows to load")
	seed        = flag.Int64("seed", 0, "random seed (0 = time-based)")
	keep        = flag.Bool("keep", false, "keep the work directory on exit")
)

func main() {
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("crashtest: %d rows, seed %d\n", *rows, *seed)

	work, err := os.MkdirTemp("", "crashtest-")
	if err != nil {
		fatal(err)
	}
	if *keep {
		fmt.Println("work dir:", work)
	} else {
		defer os.RemoveAll(work)
	}

	csvPath := filepath.Join(work, "kv.csv")
	if err := writeCSV(csvPath, *rows); err != nil {
		fatal(err)
	}
	initPath := filepath.Join(work, "schema.sql")
	if err := os.WriteFile(initPath, []byte(schemaSQL), 0o644); err != nil {
		fatal(err)
	}

	control, err := controlRun(work, initPath, csvPath)
	if err != nil {
		fatal(fmt.Errorf("control run: %w", err))
	}
	fmt.Printf("control: %d rows loaded and dumped\n", len(control))

	if err := crashRun(work, initPath, csvPath, control, rng); err != nil {
		fatal(fmt.Errorf("crash run: %w", err))
	}
	if err := checkpointRun(work); err != nil {
		fatal(fmt.Errorf("checkpoint run: %w", err))
	}
	fmt.Println("crashtest: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashtest:", err)
	os.Exit(1)
}

func writeCSV(path string, n int) error {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "key-%06d,%d\n", i, i)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// server wraps one cached process.
type server struct {
	cmd  *exec.Cmd
	addr string
	log  *os.File
}

func startServer(work, name, addr, dataDir, initPath string, extraArgs ...string) (*server, error) {
	logf, err := os.Create(filepath.Join(work, name+".log"))
	if err != nil {
		return nil, err
	}
	args := []string{"-addr", addr, "-timer", "0", "-init", initPath, "-data", dataDir}
	args = append(args, extraArgs...) // later flags win, so extras may override -timer
	cmd := exec.Command(*cachedBin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, err
	}
	s := &server{cmd: cmd, addr: addr, log: logf}
	// Wait until it accepts RPC connections.
	for i := 0; i < 100; i++ {
		if eng, err := unicache.DialRemote(addr); err == nil {
			_ = eng.Close()
			return s, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = s.kill()
	return nil, fmt.Errorf("%s did not come up (see %s)", name, logf.Name())
}

func (s *server) kill() error {
	err := s.cmd.Process.Kill() // SIGKILL: no shutdown path runs
	_, _ = s.cmd.Process.Wait()
	s.log.Close()
	return err
}

func (s *server) shutdown() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	state, err := s.cmd.Process.Wait()
	s.log.Close()
	if err != nil {
		return err
	}
	if !state.Success() {
		return fmt.Errorf("cached exited %s", state)
	}
	return nil
}

// loadCSV streams the CSV into table KV through `cachectl load` — the
// same streaming RPC path an application load uses. It returns the
// running command and the write end feeding its stdin, so the caller can
// kill the server mid-stream.
func loadCSV(addr, csvPath string) (*loadProc, error) {
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(*cachectlBin, "-addr", addr, "load", "KV")
	cmd.Stdin = f
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		f.Close()
		return nil, err
	}
	p := &loadProc{cmd: cmd, done: make(chan error, 1)}
	go func() {
		p.done <- cmd.Wait()
		f.Close()
	}()
	return p, nil
}

type loadProc struct {
	cmd  *exec.Cmd
	done chan error
}

func (p *loadProc) wait(timeout time.Duration) error {
	select {
	case err := <-p.done:
		return err
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		return fmt.Errorf("load did not finish within %s", timeout)
	}
}

// abandon kills the load and reaps it (its server just died under it, so
// any exit status is acceptable).
func (p *loadProc) abandon() {
	_ = p.cmd.Process.Kill()
	select {
	case <-p.done:
	case <-time.After(10 * time.Second):
	}
}

// dumpKV returns KV's rows as sorted "k=n" strings.
func dumpKV(eng *unicache.Remote) ([]string, error) {
	res, err := eng.Exec(`select k, n from KV`)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		n, _ := row[1].AsInt()
		out = append(out, fmt.Sprintf("%s=%d", row[0].String(), n))
	}
	sort.Strings(out)
	return out, nil
}

func kvStats(eng *unicache.Remote) (seq uint64, automata int, err error) {
	st, err := eng.Stats()
	if err != nil {
		return 0, 0, err
	}
	if st.Durability == nil {
		return 0, 0, fmt.Errorf("server reports no durability stats")
	}
	for _, d := range st.Durability.Domains {
		if d.Topic == "KV" {
			seq = d.Seq
		}
	}
	return seq, len(st.Automata), nil
}

// controlRun loads the whole CSV into a fresh durable server with the
// mirror automaton registered, shuts down cleanly, and returns the dump.
func controlRun(work, initPath, csvPath string) ([]string, error) {
	dataDir := filepath.Join(work, "data-control")
	srv, err := startServer(work, "control", "127.0.0.1:7931", dataDir, initPath)
	if err != nil {
		return nil, err
	}
	defer srv.kill()
	eng, err := unicache.DialRemote(srv.addr)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if _, err := eng.Register(mirrorGAPL); err != nil {
		return nil, fmt.Errorf("register: %w", err)
	}
	load, err := loadCSV(srv.addr, csvPath)
	if err != nil {
		return nil, err
	}
	if err := load.wait(2 * time.Minute); err != nil {
		return nil, err
	}
	if !unicache.WaitIdle(eng, time.Minute) {
		return nil, fmt.Errorf("automata did not quiesce")
	}
	dump, err := dumpKV(eng)
	if err != nil {
		return nil, err
	}
	seq, nauto, err := kvStats(eng)
	if err != nil {
		return nil, err
	}
	if seq != uint64(len(dump)) {
		return nil, fmt.Errorf("control seq %d != rows %d", seq, len(dump))
	}
	if nauto != 1 {
		return nil, fmt.Errorf("control has %d automata, want 1", nauto)
	}
	_ = eng.Close()
	if err := srv.shutdown(); err != nil {
		return nil, err
	}
	return dump, nil
}

// crashRun is the harness proper: SIGKILL mid-load, restart, verify.
func crashRun(work, initPath, csvPath string, control []string, rng *rand.Rand) error {
	dataDir := filepath.Join(work, "data-crash")
	srv, err := startServer(work, "crash", "127.0.0.1:7932", dataDir, initPath)
	if err != nil {
		return err
	}
	eng, err := unicache.DialRemote(srv.addr)
	if err != nil {
		_ = srv.kill()
		return err
	}
	if _, err := eng.Register(mirrorGAPL); err != nil {
		_ = srv.kill()
		return fmt.Errorf("register: %w", err)
	}
	load, err := loadCSV(srv.addr, csvPath)
	if err != nil {
		_ = srv.kill()
		return err
	}

	// SIGKILL at a random point while the stream is (probably) in flight.
	// The exact moment does not matter — before, during or just after the
	// load, recovery must hold; randomness spreads runs across the window.
	delay := time.Duration(rng.Intn(400)) * time.Millisecond
	time.Sleep(delay)
	if err := srv.kill(); err != nil {
		return err
	}
	load.abandon()
	_ = eng.Close()
	fmt.Printf("crash: SIGKILL after %v\n", delay)

	// Restart on the same data directory.
	srv2, err := startServer(work, "crash-restart", "127.0.0.1:7933", dataDir, initPath)
	if err != nil {
		return err
	}
	defer srv2.kill()
	eng2, err := unicache.DialRemote(srv2.addr)
	if err != nil {
		return err
	}
	defer eng2.Close()

	// 1. Contiguous prefix: COUNT(KV) == recovered seq, and the rows are
	// exactly the CSV's first seq lines (keys are committed in CSV order).
	seq, nauto, err := kvStats(eng2)
	if err != nil {
		return err
	}
	dump, err := dumpKV(eng2)
	if err != nil {
		return err
	}
	if uint64(len(dump)) != seq {
		return fmt.Errorf("recovered %d rows but seq is %d: lost or phantom commits", len(dump), seq)
	}
	if seq > uint64(len(control)) {
		return fmt.Errorf("recovered seq %d exceeds the %d rows ever sent", seq, len(control))
	}
	for i, row := range dump {
		want := fmt.Sprintf("key-%06d=%d", i+1, i+1)
		if row != want {
			return fmt.Errorf("recovered row %d is %q, want %q: not the CSV prefix", i, row, want)
		}
	}
	fmt.Printf("crash: recovered exact %d-row prefix (seq %d)\n", len(dump), seq)

	// 2. The automaton recovered from the meta log.
	if nauto != 1 {
		return fmt.Errorf("recovered %d automata, want 1", nauto)
	}

	// 3. Idempotent reload of the full CSV converges on the control state.
	load2, err := loadCSV(srv2.addr, csvPath)
	if err != nil {
		return err
	}
	if err := load2.wait(2 * time.Minute); err != nil {
		return err
	}
	seq2, _, err := kvStats(eng2)
	if err != nil {
		return err
	}
	if want := seq + uint64(len(control)); seq2 != want {
		return fmt.Errorf("seq after reload = %d, want %d (no reuse, contiguous)", seq2, want)
	}
	dump2, err := dumpKV(eng2)
	if err != nil {
		return err
	}
	if len(dump2) != len(control) {
		return fmt.Errorf("after reload: %d rows, control has %d", len(dump2), len(control))
	}
	for i := range dump2 {
		if dump2[i] != control[i] {
			return fmt.Errorf("after reload row %d: %q != control %q", i, dump2[i], control[i])
		}
	}
	fmt.Printf("crash: reload converged on the control dump (%d rows, seq %d)\n", len(dump2), seq2)

	// 4. The recovered automaton is alive: one more commit moves Mirror.
	if !unicache.WaitIdle(eng2, time.Minute) {
		return fmt.Errorf("automata did not quiesce after reload")
	}
	before, err := mirrorCount(eng2)
	if err != nil {
		return err
	}
	if err := eng2.Insert("KV", types.Str("key-extra"), types.Int(1)); err != nil {
		return err
	}
	deadline := time.Now().Add(time.Minute)
	for {
		after, err := mirrorCount(eng2)
		if err != nil {
			return err
		}
		if after > before {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("recovered automaton never processed the post-restart commit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("crash: recovered automaton is live")
	return nil
}

// Pattern-checkpoint phase: schema, pattern and harness.
const patternSchemaSQL = `
create table PA (u integer, v integer);
create table PB (u integer, v integer);
create table PMatches (u integer, av integer, bv integer);
`

// patternGAPL is a two-step sequence with a correlation predicate; its
// half-completed partial (an unmatched PA event) is exactly the state a
// periodic checkpoint must carry across a SIGKILL.
const patternGAPL = `
subscribe a to PA;
subscribe b to PB;
pattern { match a then b within 600 SECS; where b.u == a.u; emit a.u, a.v, b.v into PMatches; }
`

// checkpointRun proves timer-driven automaton checkpoints: feed half a
// sequence match, wait for a periodic checkpoint to land strictly after
// it, SIGKILL (no shutdown snapshot), restart, feed the other half and
// require the match — it can only exist if the checkpoint persisted the
// partial.
func checkpointRun(work string) error {
	dataDir := filepath.Join(work, "data-ckpt")
	initPath := filepath.Join(work, "pattern.sql")
	if err := os.WriteFile(initPath, []byte(patternSchemaSQL), 0o644); err != nil {
		return err
	}
	ckptArgs := []string{"-timer", "50ms", "-checkpoint", "200ms"}
	srv, err := startServer(work, "ckpt", "127.0.0.1:7934", dataDir, initPath, ckptArgs...)
	if err != nil {
		return err
	}
	eng, err := unicache.DialRemote(srv.addr)
	if err != nil {
		_ = srv.kill()
		return err
	}
	a, err := eng.Register(patternGAPL)
	if err != nil {
		_ = srv.kill()
		return fmt.Errorf("register pattern: %w", err)
	}
	if err := eng.Insert("PA", types.Int(7), types.Int(70)); err != nil {
		_ = srv.kill()
		return err
	}
	// The partial exists once the PA event has reached the machine.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := a.Stats()
		if err != nil {
			_ = srv.kill()
			return err
		}
		if st.Depth == 0 && st.Processed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			_ = srv.kill()
			return fmt.Errorf("PA event never reached the pattern machine")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Wait for a checkpoint that started strictly after the partial
	// existed: the snapshot counter must move twice (the first increment
	// may be a checkpoint cut just before our event landed).
	snaps0, err := snapshotCount(eng)
	if err != nil {
		_ = srv.kill()
		return err
	}
	for {
		n, err := snapshotCount(eng)
		if err != nil {
			_ = srv.kill()
			return err
		}
		if n >= snaps0+2 {
			break
		}
		if time.Now().After(deadline) {
			_ = srv.kill()
			return fmt.Errorf("no periodic checkpoint observed (snapshots %d -> %d)", snaps0, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv.kill(); err != nil { // SIGKILL: no shutdown snapshot
		return err
	}
	_ = eng.Close()
	fmt.Println("checkpoint: SIGKILL with a checkpointed half-match on disk")

	srv2, err := startServer(work, "ckpt-restart", "127.0.0.1:7935", dataDir, initPath, ckptArgs...)
	if err != nil {
		return err
	}
	defer srv2.kill()
	eng2, err := unicache.DialRemote(srv2.addr)
	if err != nil {
		return err
	}
	defer eng2.Close()
	st, err := eng2.Stats()
	if err != nil {
		return err
	}
	if len(st.Automata) != 1 {
		return fmt.Errorf("recovered %d automata, want the pattern automaton", len(st.Automata))
	}
	res, err := eng2.Exec(`select u from PMatches`)
	if err != nil {
		return err
	}
	if len(res.Rows) != 0 {
		return fmt.Errorf("PMatches has %d rows before the closing event", len(res.Rows))
	}
	if err := eng2.Insert("PB", types.Int(7), types.Int(700)); err != nil {
		return err
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		res, err := eng2.Exec(`select u, av, bv from PMatches`)
		if err != nil {
			return err
		}
		if len(res.Rows) == 1 {
			if got := fmt.Sprint(res.Rows[0]); got != "[7 70 700]" {
				return fmt.Errorf("recovered match = %s, want [7 70 700]", got)
			}
			break
		}
		if len(res.Rows) > 1 {
			return fmt.Errorf("PMatches has %d rows, want 1", len(res.Rows))
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("checkpointed partial never completed after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("checkpoint: partial match survived SIGKILL and completed after restart")
	return nil
}

func snapshotCount(eng *unicache.Remote) (uint64, error) {
	st, err := eng.Stats()
	if err != nil {
		return 0, err
	}
	if st.Durability == nil {
		return 0, fmt.Errorf("server reports no durability stats")
	}
	return st.Durability.Snapshots, nil
}

func mirrorCount(eng *unicache.Remote) (int64, error) {
	res, err := eng.Exec(`select n from Mirror where name = 'count'`)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	n, _ := res.Rows[0][0].AsInt()
	return n, nil
}
