// Command cachectl is the application-side CLI for a running cached
// instance. It plays the three application roles of §3: populating tables
// with events, retrieving data with ad hoc selects, and registering
// automata to be notified when complex event patterns are detected.
//
// Usage:
//
//	cachectl -addr 127.0.0.1:7654 exec "create table Flows (nbytes integer)"
//	cachectl exec "insert into Flows values (1500)"
//	cachectl exec "select * from Flows [rows 10]"
//	cachectl register bandwidth.gapl        # registers and streams send() events
//	cachectl tables
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"unicache/internal/rpc"
	"unicache/internal/sql"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "cached address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	cl, err := rpc.Dial(*addr)
	if err != nil {
		fail(err)
	}
	defer func() { _ = cl.Close() }()

	switch args[0] {
	case "exec":
		if len(args) < 2 {
			usage()
		}
		res, err := cl.Exec(strings.Join(args[1:], " "))
		if err != nil {
			fail(err)
		}
		printResult(res)
	case "register":
		if len(args) != 2 {
			usage()
		}
		src, err := os.ReadFile(args[1])
		if err != nil {
			fail(err)
		}
		id, err := cl.Register(string(src))
		if err != nil {
			fail(err)
		}
		fmt.Printf("registered automaton %d; streaming send() events (^C to stop)\n", id)
		done := make(chan os.Signal, 1)
		signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
		for {
			select {
			case ev, ok := <-cl.Events():
				if !ok {
					return
				}
				parts := make([]string, len(ev.Vals))
				for i, v := range ev.Vals {
					parts[i] = v.String()
				}
				fmt.Printf("[automaton %d] %s\n", ev.AutomatonID, strings.Join(parts, " | "))
			case <-done:
				return
			}
		}
	case "ping":
		if err := cl.Ping(); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	default:
		usage()
	}
}

func printResult(res *sql.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("ok (%d row(s) affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d row(s))\n", len(res.Rows))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cachectl [-addr host:port] exec "<sql>"
  cachectl [-addr host:port] register <file.gapl>
  cachectl [-addr host:port] ping`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cachectl:", err)
	os.Exit(1)
}
