// Command cachectl is the application-side CLI for a running cached
// instance. It plays the three application roles of §3: populating tables
// with events, retrieving data with ad hoc selects, and registering
// automata to be notified when complex event patterns are detected — all
// through the public unicache.Engine façade, the same API an embedded
// program uses.
//
// Usage:
//
//	cachectl -addr 127.0.0.1:7654 exec "create table Flows (nbytes integer)"
//	cachectl exec "insert into Flows values (1500)"
//	cachectl exec "select * from Flows [rows 10]"
//	cachectl exec "insert into Flows values (1), (2), (3)"   # one batch commit
//	cachectl load Flows < flows.csv         # bulk load stdin via a streaming insert
//	cachectl register bandwidth.gapl        # registers and streams send() events
//	cachectl watch Flows                    # streams the topic's raw events
//	cachectl stats                          # per-subscription depth/dropped counters
//	cachectl tables
//
// -addr also accepts a comma-separated node list; cachectl then speaks to
// the whole partitioned cluster through unicache.Cluster, with every verb
// unchanged — exec/load route to each table's owner node, tables/stats
// merge all nodes, ping checks every node:
//
//	cachectl -addr 127.0.0.1:7654,127.0.0.1:7655,127.0.0.1:7656 tables
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"unicache"
	"unicache/internal/csvload"
	"unicache/internal/types"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "cached address, or a comma-separated cluster node list")
	token := flag.String("token", "", "tenant token for a multi-tenant cached (empty for single-tenant servers)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var opts []unicache.DialOption
	if *token != "" {
		opts = append(opts, unicache.WithToken(*token))
	}
	eng, err := unicache.Dial(*addr, opts...)
	if err != nil {
		fail(err)
	}
	defer func() { _ = eng.Close() }()

	switch args[0] {
	case "exec":
		if len(args) < 2 {
			usage()
		}
		res, err := eng.Exec(strings.Join(args[1:], " "))
		if err != nil {
			fail(err)
		}
		printResult(res)
	case "tables":
		tables, err := eng.Tables()
		if err != nil {
			fail(err)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
	case "register":
		if len(args) != 2 {
			usage()
		}
		src, err := os.ReadFile(args[1])
		if err != nil {
			fail(err)
		}
		a, err := eng.Register(string(src))
		if err != nil {
			fail(err)
		}
		fmt.Printf("registered automaton %d; streaming send() events (^C to stop)\n", a.ID())
		done := make(chan os.Signal, 1)
		signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
		for {
			select {
			case vals, ok := <-a.Events():
				if !ok {
					return
				}
				parts := make([]string, len(vals))
				for i, v := range vals {
					parts[i] = v.String()
				}
				fmt.Printf("[automaton %d] %s\n", a.ID(), strings.Join(parts, " | "))
			case <-done:
				return
			}
		}
	case "watch":
		if len(args) != 2 {
			usage()
		}
		w, err := eng.Watch(args[1], func(ev *unicache.Event) {
			parts := make([]string, len(ev.Tuple.Vals))
			for i, v := range ev.Tuple.Vals {
				parts[i] = v.String()
			}
			fmt.Printf("[%s #%d] %s\n", ev.Topic, ev.Tuple.Seq, strings.Join(parts, " | "))
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("watching %s as %d (^C to stop)\n", args[1], w.ID())
		done := make(chan os.Signal, 1)
		signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
		<-done
		_ = w.Close()
	case "stats":
		st, err := eng.Stats()
		if err != nil {
			fail(err)
		}
		printStats(st)
	case "tenant":
		st, err := eng.Stats()
		if err != nil {
			fail(err)
		}
		if st.Tenant == nil {
			fail(fmt.Errorf("no tenant bound to this connection (dial a multi-tenant cached with -token)"))
		}
		printTenant(*st.Tenant)
	case "load":
		if len(args) != 2 {
			usage()
		}
		n, err := load(eng, args[1])
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded %d row(s) into %s\n", n, args[1])
	case "ping":
		if err := ping(eng); err != nil {
			fail(err)
		}
		fmt.Println("ok")
	default:
		usage()
	}
}

// printStats renders the engine's observability snapshot: every live
// subscription with its dispatch-pipeline depth and dropped counters, so
// an operator can see at a glance which subscriptions are behind.
func printStats(st unicache.Stats) {
	if len(st.Watches) == 0 && len(st.Automata) == 0 && st.Durability == nil {
		fmt.Println("no live subscriptions")
		return
	}
	if len(st.Watches) == 0 && len(st.Automata) == 0 {
		fmt.Println("no live subscriptions")
	}
	if len(st.Watches) > 0 {
		fmt.Println("KIND\tID\tTOPIC\tDEPTH\tDROPPED")
		for _, w := range st.Watches {
			fmt.Printf("watch\t%d\t%s\t%d\t%d\n", w.ID, w.Topic, w.Depth, w.Dropped)
		}
	}
	if len(st.Automata) > 0 {
		fmt.Println("KIND\tID\tDEPTH\tDROPPED\tPROCESSED")
		for _, a := range st.Automata {
			fmt.Printf("automaton\t%d\t%d\t%d\t%d\n", a.ID, a.Depth, a.Dropped, a.Processed)
		}
	}
	if d := st.Durability; d != nil {
		fmt.Printf("durable\t%s\twal=%dB\tfsyncs=%d\tsnapshots=%d\treplayed=%d\ttorn=%d\n",
			d.Dir, d.WALBytes, d.Fsyncs, d.Snapshots, d.Replayed, d.TornTails)
		if len(d.Domains) > 0 {
			fmt.Println("DOMAIN\tSEQ\tWAL_BYTES")
			for _, dd := range d.Domains {
				fmt.Printf("%s\t%d\t%d\n", dd.Topic, dd.Seq, dd.WALBytes)
			}
		}
	}
}

// printTenant renders one tenant's accounting rollup with quota headroom
// (a limit of 0 means unlimited).
func printTenant(t unicache.TenantStats) {
	limit := func(n int64) string {
		if n <= 0 {
			return "-"
		}
		return fmt.Sprintf("%d", n)
	}
	fmt.Printf("tenant\t%s\n", t.Name)
	fmt.Println("RESOURCE\tUSED\tLIMIT")
	fmt.Printf("tables\t%d\t%s\n", t.Tables, limit(int64(t.Quota.MaxTables)))
	fmt.Printf("automata\t%d\t%s\n", t.Automata, limit(int64(t.Quota.MaxAutomata)))
	fmt.Printf("watches\t%d\t-\n", t.Watches)
	fmt.Printf("wal_bytes\t%d\t%s\n", t.WALBytes, limit(t.Quota.MaxWALBytes))
	fmt.Printf("events\t%d\t%s/s\n", t.Events, limit(int64(t.Quota.MaxEventsPerSec)))
	fmt.Printf("events_per_sec\t%.1f\n", t.EventsPerSec)
	fmt.Printf("dropped\t%d\n", t.Dropped)
	fmt.Printf("rejected\t%d\n", t.Rejected)
}

// load bulk-inserts CSV rows from stdin. Against a single node the rows
// pour down a streaming RPC insert — bounded chunks, no per-chunk round
// trips, so a multi-MB load costs two round trips total and arbitrarily
// large files stream in constant memory. Against a cluster the rows go
// through a ClusterBatcher, which routes them to the table's owner node
// and escalates to the same streaming path per node. Fields are parsed
// against the table's declared column types (fetched via describe); see
// internal/csvload for the format. The stream is connection-level
// machinery, so it comes from the engine's underlying RPC client rather
// than the location-transparent surface.
func load(eng unicache.Engine, table string) (int, error) {
	colTypes, err := fetchColumnTypes(eng, table)
	if err != nil {
		return 0, err
	}
	if r, ok := eng.(*unicache.Remote); ok {
		st, err := r.Client().NewInsertStream(table)
		if err != nil {
			return 0, err
		}
		n, err := csvload.Load(os.Stdin, colTypes, func(vals []types.Value) error {
			return st.Add(vals...)
		})
		if err != nil {
			_, _ = st.Close()
			return n, err
		}
		committed, err := st.Close()
		return int(committed), err
	}
	b := eng.(interface {
		Batcher() *unicache.ClusterBatcher
	}).Batcher()
	n, err := csvload.Load(os.Stdin, colTypes, func(vals []types.Value) error {
		return b.Add(table, vals...)
	})
	if err != nil {
		_ = b.Close()
		return n, err
	}
	return n, b.Close()
}

// ping round-trips every node the engine speaks to: one connection for a
// Remote, all of them for a Cluster.
func ping(eng unicache.Engine) error {
	if r, ok := eng.(*unicache.Remote); ok {
		return r.Client().Ping()
	}
	return eng.(interface{ Ping() error }).Ping()
}

// fetchColumnTypes asks the server for the table's schema (describe output:
// column, type, key) and returns the type name per column in order.
func fetchColumnTypes(eng unicache.Engine, table string) ([]string, error) {
	res, err := eng.Exec("describe " + table)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = row[1].String()
	}
	return out, nil
}

func printResult(res *unicache.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("ok (%d row(s) affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d row(s))\n", len(res.Rows))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cachectl [-addr host:port[,host:port...]] [-token t] exec "<sql>"
  cachectl [-addr ...] register <file.gapl>
  cachectl [-addr ...] watch <topic>
  cachectl [-addr ...] stats
  cachectl [-addr ...] tenant         # the bound tenant's usage vs quota (-token required)
  cachectl [-addr ...] tables
  cachectl [-addr ...] load <table>   # CSV rows on stdin ('#' lines are comments)
  cachectl [-addr ...] ping

-addr with a comma-separated list addresses a partitioned cluster.
-token authenticates to a multi-tenant cached (run with -tenants).`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cachectl:", err)
	os.Exit(1)
}
