//go:build race

package unicache

// raceEnabled gates tests whose measurements (allocation accounting) are
// meaningless under the race detector's instrumentation.
const raceEnabled = true
