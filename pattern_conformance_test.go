// Pattern-clause conformance: the CEP layer's observable behaviour —
// match tuples, their values and their completion order — must be
// identical on every backend (embedded, durable, remote, cluster), and a
// durable cache must carry partial-match state across a close/reopen.
// The Timer runs at a short period in these tests: pattern automata lean
// on its punctuation to advance the watermark past stalled streams and to
// fire deadline completions.
package unicache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"unicache/internal/types"
)

// collectMatches drains n match tuples from the automaton's event channel,
// rendering each as a print-style row.
func collectMatches(t *testing.T, a Automaton, n int, timeout time.Duration) []string {
	t.Helper()
	var got []string
	deadline := time.After(timeout)
	for len(got) < n {
		select {
		case vals, ok := <-a.Events():
			if !ok {
				t.Fatalf("events channel closed early; got %v", got)
			}
			got = append(got, fmt.Sprint(vals))
		case <-deadline:
			t.Fatalf("timed out after %d/%d matches: %v", len(got), n, got)
		}
	}
	return got
}

// TestConformancePatternSequence pins SEQ semantics across backends: a
// two-step sequence with a correlation predicate, closed out of arrival
// order, emits the same tuples in the same completion order everywhere.
func TestConformancePatternSequence(t *testing.T) {
	forEachBackend(t, Config{TimerPeriod: 50 * time.Millisecond}, func(t *testing.T, p backendPair) {
		e := p.primary
		for _, ddl := range []string{
			`create table A (u integer, v integer)`,
			`create table B (u integer, v integer)`,
		} {
			if _, err := e.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		a, err := e.Register(`
subscribe a to A;
subscribe b to B;
pattern { match a then b within 60 SECS; where b.u == a.u; emit a.u, a.v, b.v; }
`)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		type row struct {
			topic string
			u, v  int64
		}
		for _, r := range []row{
			{"A", 1, 10}, {"A", 2, 20}, {"B", 2, 200}, {"B", 1, 100}, {"B", 1, 101},
		} {
			if err := e.Insert(r.topic, types.Int(r.u), types.Int(r.v)); err != nil {
				t.Fatal(err)
			}
		}
		// Skip-till-next-match: each A starts its own partial, each closes
		// on the first correlated B, and B(1,101) finds no live partial.
		// Completion order follows the closing events' time order.
		got := collectMatches(t, a, 2, 20*time.Second)
		want := []string{"[2 20 200]", "[1 10 100]"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("matches = %v, want %v", got, want)
		}
	})
}

// TestConformancePatternNegation pins trailing negation: the match
// completes only when the window expires without a correlated negative
// event, driven by Timer punctuation — identically on every backend.
func TestConformancePatternNegation(t *testing.T) {
	forEachBackend(t, Config{TimerPeriod: 50 * time.Millisecond}, func(t *testing.T, p backendPair) {
		e := p.primary
		for _, ddl := range []string{
			`create table A (u integer, v integer)`,
			`create table B (u integer, v integer)`,
		} {
			if _, err := e.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		a, err := e.Register(`
subscribe a to A;
subscribe b to B;
pattern { match a then !b within 1500 MSECS; where b.u == a.u; emit a.u, a.v; }
`)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		// B(1,5) kills A(1,10)'s partial inside the window; nothing
		// correlates with A(2,20), so its absence-match fires at the
		// deadline.
		for _, r := range [][3]any{{"A", 1, 10}, {"B", 1, 5}, {"A", 2, 20}} {
			if err := e.Insert(r[0].(string), types.Int(int64(r[1].(int))), types.Int(int64(r[2].(int)))); err != nil {
				t.Fatal(err)
			}
		}
		got := collectMatches(t, a, 1, 20*time.Second)
		if got[0] != "[2 20]" {
			t.Fatalf("match = %v, want [2 20]", got[0])
		}
		// The killed partial must stay dead: its deadline precedes the
		// emitted one, so any spurious completion would already have
		// arrived; a short grace period pins the channel empty.
		select {
		case vals := <-a.Events():
			t.Fatalf("unexpected extra match %v", vals)
		case <-time.After(200 * time.Millisecond):
		}
	})
}

// TestConformancePatternKleene pins same-topic Kleene-plus with
// aggregates: two subscription variables over one stream, greedy
// accumulation under a per-instance predicate, close-on-next-step, and
// count/sum evaluated over the collected instances.
func TestConformancePatternKleene(t *testing.T) {
	forEachBackend(t, Config{TimerPeriod: 50 * time.Millisecond}, func(t *testing.T, p backendPair) {
		e := p.primary
		for _, ddl := range []string{
			`create table S (v integer)`,
			`create table E (v integer)`,
		} {
			if _, err := e.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		a, err := e.Register(`
subscribe s0 to S;
subscribe s to S;
subscribe e to E;
pattern { match s0 then s+ then e within 60 SECS; where s.v > s0.v; emit s0.v, count(s), sum(s.v); }
`)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		for _, v := range []int64{1, 5, 3, 7} {
			if err := e.Insert("S", types.Int(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Insert("E", types.Int(0)); err != nil {
			t.Fatal(err)
		}
		// Every S starts a partial; each accumulates the later S events
		// that exceed its own anchor and closes on E. S(7) collects no
		// instance, so Kleene-plus leaves it incomplete. Three partials
		// complete on the same closing event — creation order breaks the
		// tie.
		got := collectMatches(t, a, 3, 20*time.Second)
		want := []string{"[1 3 15]", "[5 1 7]", "[3 1 7]"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("matches = %v, want %v", got, want)
		}
	})
}

// TestConformancePatternDurableReopen proves partial-match state rides
// the WAL meta log: an automaton holding a half-completed sequence is
// closed cleanly, reopened, and the match completes from the recovered
// partial when the second half arrives in the new process.
func TestConformancePatternDurableReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		TimerPeriod: 50 * time.Millisecond,
		PrintWriter: &strings.Builder{},
		DataDir:     dir,
	}

	e1, err := NewEmbedded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range []string{
		`create table A (u integer, v integer)`,
		`create table B (u integer, v integer)`,
		`create table Matches (u integer, av integer, bv integer)`,
	} {
		if _, err := e1.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	a, err := e1.Register(`
subscribe a to A;
subscribe b to B;
pattern { match a then b within 60 SECS; where b.u == a.u; emit a.u, a.v, b.v into Matches; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Insert("A", types.Int(7), types.Int(70)); err != nil {
		t.Fatal(err)
	}
	// The A event must reach the machine before the close-time snapshot:
	// Close does not drain inboxes.
	waitFor(t, 10*time.Second, "the half-match to reach the machine", func() bool {
		st, err := a.Stats()
		return err == nil && st.Depth == 0 && st.Processed >= 1
	})
	// Close the cache, not the engine handle: Engine.Close detaches the
	// handles created through it — an explicit Unregister that strikes the
	// automaton from the durable record. The cache's own Close is the
	// clean-shutdown path that snapshots live automata for recovery.
	e1.Cache().Close()

	e2, err := NewEmbedded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e2.Close() })
	var mu sync.Mutex
	var rows []string
	w, err := e2.Watch("Matches", func(ev *Event) {
		mu.Lock()
		rows = append(rows, fmt.Sprint(ev.Tuple.Vals))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := e2.Insert("B", types.Int(7), types.Int(700)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 20*time.Second, "the recovered partial to complete", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(rows) >= 1
	})
	mu.Lock()
	defer mu.Unlock()
	if rows[0] != "[7 70 700]" {
		t.Fatalf("recovered match = %v, want [7 70 700]", rows[0])
	}
}
