// DEBS 2012 Grand Challenge, query 1: manufacturing-equipment monitoring
// (§5.1 of the paper and reference [23]).
//
// The paper's point is operator fusion: where a stream-algebra engine
// needs 15 scheduled operators and duplicated state, the imperative
// automaton below merges the whole pipeline into one program —
//
//   - operators 1/4: detect valve state transitions on the raw sensor
//     stream (events S5 and S8),
//   - operator 7: correlate an S5 with the following S8 into an S58
//     measurement (the equipment cycle delay),
//   - operator 10: a least-squares fit over a 24-hour window of delays,
//   - operator 11: raise an alarm when the trend slope shows the delay
//     increasing (equipment degradation).
//
// Run with: go run ./examples/debs2012
package main

import (
	"fmt"
	"log"
	"time"

	"unicache/internal/cache"
	"unicache/internal/types"
	"unicache/internal/workload"
)

// The merged query-1 automaton: transition detection, sequence correlation
// and trend analysis under a single execution thread.
const debsAutomaton = `
subscribe m to Measurements;
bool prev1, prev2, have1, have2, haveS5;
tstamp s5ts;
window delays;        # (ts, delay-ns) pairs across a 24h window
sequence fit;
real slope;
int reports;
initialization {
	delays = Window(sequence, SECS, 86400);
}
behavior {
	# Operators 1/4: valve state transitions define S5 and S8 events.
	if (have1 && m.valve1 != prev1) {
		# S5: valve1 toggled.
		s5ts = m.ts;
		haveS5 = true;
	}
	if (have2 && m.valve2 != prev2 && haveS5) {
		# Operator 7: S5 followed by S8 -> S58 cycle delay.
		append(delays, Sequence(int(m.ts), tstampDiff(m.ts, s5ts)));
		haveS5 = false;
		# Operators 10/11: trend over the shared 24h window; one copy of
		# the state serves both the fit and the alarm.
		if (winSize(delays) >= 10) {
			fit = lsf(delays);
			slope = seqElement(fit, 0);
			if (slope > 0.0) {
				reports += 1;
				send('ALARM: cycle delay increasing', slope, winSize(delays));
			}
		}
	}
	prev1 = m.valve1;
	prev2 = m.valve2;
	have1 = true;
	have2 = true;
}
`

func main() {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create table Measurements (ts tstamp, valve1 boolean, valve2 boolean, sensor real)`); err != nil {
		log.Fatal(err)
	}

	alarms := 0
	var lastSlope string
	sink := func(vals []types.Value) error {
		alarms++
		lastSlope = vals[1].String()
		return nil
	}
	if _, err := c.Register(debsAutomaton, sink); err != nil {
		log.Fatal(err)
	}

	// The synthetic feed drifts the valve2 transition delay upwards, so
	// the trend detector has degradation to find.
	trace := workload.DEBSTrace(99, 60_000, 200)
	for _, ev := range trace {
		err := c.Insert("Measurements",
			types.Stamp(types.Timestamp(ev.TS)), types.Bool(ev.Valve1),
			types.Bool(ev.Valve2), types.Real(ev.Sensor))
		if err != nil {
			log.Fatal(err)
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("automaton did not quiesce")
	}

	fmt.Printf("processed %d sensor events\n", len(trace))
	fmt.Printf("alarms raised: %d (latest fitted slope %s ns/ns)\n", alarms, lastSlope)
	if alarms == 0 {
		fmt.Println("no degradation detected — unexpected for this feed")
	} else {
		fmt.Println("equipment cycle delay is trending upwards: maintenance required")
	}
}
