// DEBS 2012 Grand Challenge, query 1: manufacturing-equipment monitoring
// (§5.1 of the paper and reference [23]), rebuilt on the CEP pattern
// layer.
//
// The original example fused the whole pipeline into one imperative
// automaton. This version shows the declarative style the pattern layer
// recovers, as a pub/sub pipeline of three automata — each stage an
// independently registered subscriber, composed through topics exactly as
// the paper's unification story prescribes:
//
//   - transitions (behaviour): detects valve state changes on the raw
//     sensor stream and publishes them as S5 / S8 event streams
//     (operators 1/4 of the reference query plan);
//   - correlate (pattern): `match s5 then s8 within 60 SECS` — the
//     operator-7 sequence correlation, expressed as a declarative SEQ
//     pattern and compiled to an NFA instead of hand-rolled flag
//     variables; each matched pair is published into S58;
//   - trend (behaviour): least-squares fit over a 24-hour window of the
//     matched cycle delays, alarming when the slope shows the delay
//     increasing (operators 10/11).
//
// Run with: go run ./examples/debs2012
package main

import (
	"fmt"
	"log"
	"time"

	"unicache/internal/cache"
	"unicache/internal/types"
	"unicache/internal/workload"
)

// transitionsGAPL turns raw measurements into S5/S8 transition events.
const transitionsGAPL = `
subscribe m to Measurements;
bool prev1, prev2, have1, have2;
behavior {
	if (have1 && m.valve1 != prev1) publish('S5', m.ts);
	if (have2 && m.valve2 != prev2) publish('S8', m.ts);
	prev1 = m.valve1;
	prev2 = m.valve2;
	have1 = true;
	have2 = true;
}
`

// correlateGAPL is the operator-7 sequence: an S5 followed by the next S8
// within the window. Skip-till-next-match pairs each S5 with the first
// following S8 — on this alternating feed, exactly the equipment cycles.
// The window rides commit time (the feed replays in real time scaled
// down, so 60 wall-clock seconds comfortably covers every cycle).
const correlateGAPL = `
subscribe s5 to S5;
subscribe s8 to S8;
pattern { match s5 then s8 within 60 SECS; emit s5.ts, s8.ts into S58; }
`

// trendGAPL fits the delay trend over the matched pairs and raises the
// degradation alarm.
const trendGAPL = `
subscribe d to S58;
window delays;        # (ts, delay-ns) pairs across a 24h window
sequence fit;
real slope;
initialization {
	delays = Window(sequence, SECS, 86400);
}
behavior {
	append(delays, Sequence(int(d.s8ts), tstampDiff(d.s8ts, d.s5ts)));
	if (winSize(delays) >= 10) {
		fit = lsf(delays);
		slope = seqElement(fit, 0);
		if (slope > 0.0) {
			send('ALARM: cycle delay increasing', slope, winSize(delays));
		}
	}
}
`

func main() {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, ddl := range []string{
		`create table Measurements (ts tstamp, valve1 boolean, valve2 boolean, sensor real)`,
		`create table S5 (ts tstamp)`,
		`create table S8 (ts tstamp)`,
		`create table S58 (s5ts tstamp, s8ts tstamp)`,
	} {
		if _, err := c.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}

	alarms := 0
	var lastSlope string
	sink := func(vals []types.Value) error {
		alarms++
		lastSlope = vals[1].String()
		return nil
	}
	discard := func([]types.Value) error { return nil }
	for _, stage := range []struct {
		src  string
		sink func([]types.Value) error
	}{
		{transitionsGAPL, discard},
		{correlateGAPL, discard},
		{trendGAPL, sink},
	} {
		if _, err := c.Register(stage.src, stage.sink); err != nil {
			log.Fatal(err)
		}
	}

	// The synthetic feed drifts the valve2 transition delay upwards, so
	// the trend detector has degradation to find.
	trace := workload.DEBSTrace(99, 60_000, 200)
	for _, ev := range trace {
		err := c.Insert("Measurements",
			types.Stamp(types.Timestamp(ev.TS)), types.Bool(ev.Valve1),
			types.Bool(ev.Valve2), types.Real(ev.Sensor))
		if err != nil {
			log.Fatal(err)
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("pipeline did not quiesce")
	}
	// A final punctuation advances the pattern watermark past the last
	// transition so the tail pair is released too.
	if err := c.TickTimer(); err != nil {
		log.Fatal(err)
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("pipeline did not quiesce after punctuation")
	}

	fmt.Printf("processed %d sensor events\n", len(trace))
	fmt.Printf("alarms raised: %d (latest fitted slope %s ns/ns)\n", alarms, lastSlope)
	if alarms == 0 {
		fmt.Println("no degradation detected — unexpected for this feed")
	} else {
		fmt.Println("equipment cycle delay is trending upwards: maintenance required")
	}
}
