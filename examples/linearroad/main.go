// Linear Road: the stream benchmark the paper names as its next
// comparative target (§8, reference [25]).
//
// A simplified variant of the benchmark's continuous queries runs as one
// merged GAPL automaton — the operator-fusion style of §5.1:
//
//   - accident detection: a car reporting speed 0 from the same position
//     for 4 consecutive reports marks its segment as having an accident;
//   - segment statistics: per-segment car counts and average speeds over
//     the current reporting interval;
//   - toll notification: when a car enters a congested segment (average
//     speed < 40 and ≥ 5 cars) with no accident, it is assessed a toll and
//     notified; cars entering an accident segment are notified to exit.
//
// Run with: go run ./examples/linearroad
package main

import (
	"fmt"
	"log"
	"time"

	"unicache/internal/cache"
	"unicache/internal/types"
	"unicache/internal/workload"
)

const lrAutomaton = `
subscribe p to Position;
map carSeg;       # car -> current segment
map stopCount;    # car -> consecutive stopped reports
map stopPos;      # car -> position of the stop streak
map accident;     # segment -> remaining clear-down counter
map segCars;      # segment -> cars seen this interval
map segSpeed;     # segment -> (count, speed-sum) this interval
identifier car, seg;
sequence ss;
int n, cnt;
real avg;
initialization {
	carSeg = Map(int);
	stopCount = Map(int);
	stopPos = Map(int);
	accident = Map(int);
	segCars = Map(int);
	segSpeed = Map(sequence);
}
behavior {
	car = Identifier(p.car);
	seg = Identifier(p.seg);

	# --- accident detection: 4 consecutive stopped reports at one spot ---
	if (p.speed == 0) {
		if (hasEntry(stopCount, car) && lookup(stopPos, car) == p.pos)
			insert(stopCount, car, lookup(stopCount, car) + 1);
		else {
			insert(stopCount, car, 1);
			insert(stopPos, car, p.pos);
		}
		if (lookup(stopCount, car) == 4) {
			insert(accident, seg, 10);
			send('ACCIDENT', p.seg, p.pos);
		}
	} else {
		remove(stopCount, car);
		remove(stopPos, car);
	}

	# --- segment statistics for the current interval ---
	if (hasEntry(segCars, seg))
		insert(segCars, seg, lookup(segCars, seg) + 1);
	else
		insert(segCars, seg, 1);
	if (hasEntry(segSpeed, seg)) {
		ss = lookup(segSpeed, seg);
		seqSet(ss, 0, seqElement(ss, 0) + 1);
		seqSet(ss, 1, seqElement(ss, 1) + p.speed);
	} else
		insert(segSpeed, seg, Sequence(1, p.speed));

	# --- toll notification on segment entry ---
	if (!hasEntry(carSeg, car) || lookup(carSeg, car) != p.seg) {
		insert(carSeg, car, p.seg);
		if (hasEntry(accident, seg)) {
			send('EXIT-ADVICE', p.car, p.seg);
		} else if (hasEntry(segSpeed, seg)) {
			ss = lookup(segSpeed, seg);
			cnt = seqElement(ss, 0);
			if (cnt >= 5) {
				avg = float(seqElement(ss, 1)) / float(cnt);
				if (avg < 40.0) {
					n = int((40.0 - avg) * (40.0 - avg) / 10.0);
					send('TOLL', p.car, p.seg, n);
				}
			}
		}
	}
}
`

func main() {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create table Position (tick integer, car integer, speed integer, seg integer, pos integer)`); err != nil {
		log.Fatal(err)
	}

	var accidents, tolls, exits int
	var tollSum int64
	sink := func(vals []types.Value) error {
		kind, _ := vals[0].AsStr()
		switch kind {
		case "ACCIDENT":
			accidents++
		case "TOLL":
			tolls++
			n, _ := vals[3].AsInt()
			tollSum += n
		case "EXIT-ADVICE":
			exits++
		}
		return nil
	}
	if _, err := c.Register(lrAutomaton, sink); err != nil {
		log.Fatal(err)
	}

	trace := workload.LRTrace(workload.DefaultLRConfig(7))
	start := time.Now()
	for _, r := range trace {
		err := c.Insert("Position",
			types.Int(r.Tick), types.Int(r.Car), types.Int(r.Speed),
			types.Int(r.Seg), types.Int(r.Pos))
		if err != nil {
			log.Fatal(err)
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("automaton did not quiesce")
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d position reports in %.2fs (%.0f reports/s)\n",
		len(trace), elapsed.Seconds(), float64(len(trace))/elapsed.Seconds())
	fmt.Printf("accidents detected:   %d\n", accidents)
	fmt.Printf("exit advisories sent: %d\n", exits)
	fmt.Printf("tolls assessed:       %d (total %d units)\n", tolls, tollSum)
}
