// Linear Road: the stream benchmark the paper names as its next
// comparative target (§8, reference [25]), rebuilt on the CEP pattern
// layer.
//
// The original example fused everything into one imperative automaton;
// this version decomposes it into a pub/sub pipeline whose centrepiece is
// a declarative accident pattern:
//
//   - filter (behaviour): projects stopped cars out of the raw position
//     stream onto a Stopped topic;
//   - accidents (pattern): `match s1 then s2 then s3 then s4 within
//     60 SECS` over Stopped, correlated on car and position — four
//     successive stopped reports from one car at one spot. Skip-till-
//     next-match emits a match for every 4-report window of a stop
//     streak; the downstream stage treats the stream as idempotent
//     segment-level state, so the duplicates collapse;
//   - tolls (behaviour): subscribes to both Position and Accidents
//     (branching on currentTopic()), keeps per-segment statistics, and
//     assesses tolls on segment entry — exit advice for accident
//     segments, congestion tolls otherwise.
//
// The pattern stage replaces the original's hand-rolled stop counters
// (stopCount/stopPos maps) with a compiled NFA; accident state crosses
// stages as events, so detection and reaction are asynchronous — the
// price of decomposition that §5.1's fusion argument is about, here
// harmless because reactions key off segment state, not event identity.
//
// Run with: go run ./examples/linearroad
package main

import (
	"fmt"
	"log"
	"time"

	"unicache/internal/cache"
	"unicache/internal/types"
	"unicache/internal/workload"
)

// filterGAPL projects stopped cars onto the Stopped topic.
const filterGAPL = `
subscribe p to Position;
behavior {
	if (p.speed == 0) publish('Stopped', p.car, p.seg, p.pos);
}
`

// accidentGAPL is the accident detector: four stopped reports from the
// same car at the same position inside the window. Four subscription
// variables over one topic give the four sequence steps; the where
// clause pins every later step to the first report's car and position.
const accidentGAPL = `
subscribe s1 to Stopped;
subscribe s2 to Stopped;
subscribe s3 to Stopped;
subscribe s4 to Stopped;
pattern {
	match s1 then s2 then s3 then s4 within 60 SECS;
	where s2.car == s1.car && s2.pos == s1.pos
	   && s3.car == s1.car && s3.pos == s1.pos
	   && s4.car == s1.car && s4.pos == s1.pos;
	emit s1.car, s1.seg, s1.pos into Accidents;
}
`

// tollGAPL reacts to both raw positions and detected accidents: segment
// statistics, accident bookkeeping (deduplicating the pattern's sliding
// matches per segment) and toll notification on segment entry.
const tollGAPL = `
subscribe p to Position;
subscribe acc to Accidents;
map carSeg;       # car -> current segment
map accident;     # segment -> accident recorded
map segCars;      # segment -> cars seen this interval
map segSpeed;     # segment -> (count, speed-sum) this interval
identifier car, seg;
sequence ss;
int n, cnt;
real avg;
initialization {
	carSeg = Map(int);
	accident = Map(int);
	segCars = Map(int);
	segSpeed = Map(sequence);
}
behavior {
	if (currentTopic() == 'Accidents') {
		seg = Identifier(acc.seg);
		if (!hasEntry(accident, seg)) {
			insert(accident, seg, 1);
			send('ACCIDENT', acc.seg, acc.pos);
		}
	} else {
		car = Identifier(p.car);
		seg = Identifier(p.seg);

		# --- segment statistics for the current interval ---
		if (hasEntry(segCars, seg))
			insert(segCars, seg, lookup(segCars, seg) + 1);
		else
			insert(segCars, seg, 1);
		if (hasEntry(segSpeed, seg)) {
			ss = lookup(segSpeed, seg);
			seqSet(ss, 0, seqElement(ss, 0) + 1);
			seqSet(ss, 1, seqElement(ss, 1) + p.speed);
		} else
			insert(segSpeed, seg, Sequence(1, p.speed));

		# --- toll notification on segment entry ---
		if (!hasEntry(carSeg, car) || lookup(carSeg, car) != p.seg) {
			insert(carSeg, car, p.seg);
			if (hasEntry(accident, seg)) {
				send('EXIT-ADVICE', p.car, p.seg);
			} else if (hasEntry(segSpeed, seg)) {
				ss = lookup(segSpeed, seg);
				cnt = seqElement(ss, 0);
				if (cnt >= 5) {
					avg = float(seqElement(ss, 1)) / float(cnt);
					if (avg < 40.0) {
						n = int((40.0 - avg) * (40.0 - avg) / 10.0);
						send('TOLL', p.car, p.seg, n);
					}
				}
			}
		}
	}
}
`

func main() {
	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, ddl := range []string{
		`create table Position (tick integer, car integer, speed integer, seg integer, pos integer)`,
		`create table Stopped (car integer, seg integer, pos integer)`,
		`create table Accidents (car integer, seg integer, pos integer)`,
	} {
		if _, err := c.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}

	var accidents, tolls, exits int
	var tollSum int64
	sink := func(vals []types.Value) error {
		kind, _ := vals[0].AsStr()
		switch kind {
		case "ACCIDENT":
			accidents++
		case "TOLL":
			tolls++
			n, _ := vals[3].AsInt()
			tollSum += n
		case "EXIT-ADVICE":
			exits++
		}
		return nil
	}
	discard := func([]types.Value) error { return nil }
	for _, stage := range []struct {
		src  string
		sink func([]types.Value) error
	}{
		{filterGAPL, discard},
		{accidentGAPL, discard},
		{tollGAPL, sink},
	} {
		if _, err := c.Register(stage.src, stage.sink); err != nil {
			log.Fatal(err)
		}
	}

	trace := workload.LRTrace(workload.DefaultLRConfig(7))
	start := time.Now()
	for _, r := range trace {
		err := c.Insert("Position",
			types.Int(r.Tick), types.Int(r.Car), types.Int(r.Speed),
			types.Int(r.Seg), types.Int(r.Pos))
		if err != nil {
			log.Fatal(err)
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("pipeline did not quiesce")
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d position reports in %.2fs (%.0f reports/s)\n",
		len(trace), elapsed.Seconds(), float64(len(trace))/elapsed.Seconds())
	fmt.Printf("accidents detected:   %d\n", accidents)
	fmt.Printf("exit advisories sent: %d\n", exits)
	fmt.Printf("tolls assessed:       %d (total %d units)\n", tolls, tollSum)
}
