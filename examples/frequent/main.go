// Frequent items over web traffic: the paper's §6.4 scenario.
//
// A synthetic Homework-router HTTP log (Zipfian host popularity, Fig. 15)
// streams through the Urls topic. Two automata summarise it concurrently:
// the imperative Fig. 14 implementation of the Misra-Gries "frequent"
// algorithm and the frequent() built-in. The example prints both summaries
// and the exact top hosts for comparison.
//
// Run with: go run ./examples/frequent
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/cache"
	"unicache/internal/experiments"
	"unicache/internal/types"
	"unicache/internal/workload"
)

func main() {
	const k = 10
	trace := workload.HTTPTrace(8, 120_000, 3000)

	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create table Urls (host varchar)`); err != nil {
		log.Fatal(err)
	}
	// Report topics let the automata ship their summaries out when asked.
	if _, err := c.Exec(`create table Report (which varchar)`); err != nil {
		log.Fatal(err)
	}

	results := make(chan []types.Value, 4)
	sink := func(vals []types.Value) error { results <- vals; return nil }

	// The imperative Fig. 14 automaton runs alongside for comparison.
	if _, err := c.Register(experiments.ProgFrequentImperative(k), automaton.DiscardSink); err != nil {
		log.Fatal(err)
	}
	// A reporting variant: on a Report event, send the whole summary map.
	reporting := fmt.Sprintf(`
subscribe e to Urls;
subscribe rep to Report;
map T;
initialization { T = Map(int); }
behavior {
	if (currentTopic() == 'Urls')
		frequent(T, Identifier(e.host), %d);
	else
		send('builtin', T);
}
`, k)
	if _, err := c.Register(reporting, sink); err != nil {
		log.Fatal(err)
	}

	for _, r := range trace {
		if err := c.Insert("Urls", types.Str(r.Host)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := c.Exec(`insert into Report values ('now')`); err != nil {
		log.Fatal(err)
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("automata did not quiesce")
	}

	vals := <-results
	summary := vals[1].Map()
	fmt.Printf("frequent() built-in summary (k = %d, %d counters):\n", k, summary.Size())
	for _, key := range summary.Keys() {
		v, _ := summary.Lookup(key)
		fmt.Printf("  %-28s %s\n", key, v)
	}

	// Ground truth for comparison.
	counts := map[string]int{}
	for _, r := range trace {
		counts[r.Host]++
	}
	type hc struct {
		host string
		n    int
	}
	var top []hc
	for h, n := range counts {
		top = append(top, hc{h, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Printf("exact top-5 of %d hosts over %d requests:\n", len(counts), len(trace))
	for _, t := range top[:5] {
		marker := " "
		if summary.Has(t.host) {
			marker = "*" // captured by the sketch
		}
		fmt.Printf("  %s %-28s %d\n", marker, t.host, t.n)
	}
	fmt.Println("(* = present in the Misra-Gries summary; every host with",
		"frequency > n/k is guaranteed to be)")
}
