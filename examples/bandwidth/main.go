// Bandwidth accounting: the paper's motivating hybrid scenario (§4.3).
//
// A cache daemon holds the Flows stream plus two persistent relations —
// Allowances (policy) and BWUsage (state). The Fig. 4 automaton joins the
// live Flows stream against the relations and notifies the registering
// policy application when a household member exceeds their monthly
// allowance. Everything runs over the real RPC system on a loopback TCP
// connection: one process plays the cache, the router (inserting flows)
// and the policy manager (registering the automaton).
//
// Run with: go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"
	"net"

	"unicache/internal/cache"
	"unicache/internal/rpc"
	"unicache/internal/types"
	"unicache/internal/workload"
)

const bandwidthAutomaton = `
subscribe f to Flows;
associate a with Allowances;
associate b with BWUsage;
int n, limit;
identifier ip;
sequence s;
behavior {
	ip = Identifier(f.dstip);
	if (hasEntry(a, ip)) {
		limit = seqElement(lookup(a, ip), 1);
		if (hasEntry(b, ip))
			n = seqElement(lookup(b, ip), 1);
		else
			n = 0;
		n += f.nbytes;
		s = Sequence(f.dstip, n);
		if (n > limit)
			send(s, limit, 'limit exceeded');
		insert(b, ip, s);
	}
}
`

func main() {
	// --- the cache daemon ---
	c, err := cache.New(cache.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	srv := rpc.NewServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	addr := ln.Addr().String()

	// --- the network-management utility: tables and policy ---
	admin, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = admin.Close() }()
	for _, stmt := range []string{
		`create table Flows (protocol integer, srcip varchar(16), sport integer,
			dstip varchar(16), dport integer, npkts integer, nbytes integer)`,
		`create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)`,
		`create persistenttable BWUsage (ipaddr varchar(16) primary key, bytes integer)`,
		// Two monitored flatmates with very different allowances.
		`insert into Allowances values ('192.168.1.2', 2000000)`,
		`insert into Allowances values ('192.168.1.3', 300000)`,
	} {
		if _, err := admin.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	// --- the policy manager: registers the automaton ---
	policy, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = policy.Close() }()
	if _, err := policy.Register(bandwidthAutomaton); err != nil {
		log.Fatal(err)
	}

	// --- the router: inserts flow records ---
	router, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = router.Close() }()
	flows := workload.FlowTrace(7, 4000, 4) // dst hosts 192.168.1.1..4
	for _, f := range flows {
		err := router.Insert("Flows",
			types.Int(f.Protocol), types.Str(f.SrcIP), types.Int(f.SrcPort),
			types.Str(f.DstIP), types.Int(f.DstPort), types.Int(f.NPkts), types.Int(f.NBytes))
		if err != nil {
			log.Fatal(err)
		}
	}

	// First notifications arrive while flows are still streaming.
	fmt.Println("policy notifications:")
	for i := 0; i < 3; i++ {
		ev := <-policy.Events()
		seq := ev.Vals[0].Seq()
		fmt.Printf("  %s: used %s bytes (limit %s) — %s\n",
			seq.At(0), seq.At(1), ev.Vals[1], ev.Vals[2])
	}

	// Ad hoc query over the same state the automaton maintains.
	res, err := admin.Exec(`select ipaddr, bytes from BWUsage order by bytes desc`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accumulated usage (BWUsage):")
	for _, row := range res.Rows {
		fmt.Printf("  %-14s %s bytes\n", row[0], row[1])
	}
}
