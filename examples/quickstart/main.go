// Quickstart: an in-process cache, one stream table, one automaton.
//
// The example creates a Readings stream, registers an automaton that
// watches for readings over a threshold, inserts a handful of tuples, and
// prints both the automaton's notifications and an ad hoc SQL view of the
// same stream — the two faces of the unified system.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"unicache/internal/cache"
	"unicache/internal/pubsub"
	"unicache/internal/types"
)

func main() {
	// A cache with the built-in 1 Hz Timer topic.
	c, err := cache.New(cache.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Tables are topics: every insert is published to subscribed automata.
	if _, err := c.Exec(`create table Readings (sensor varchar, celsius real)`); err != nil {
		log.Fatal(err)
	}

	// The automaton detects the complex event "temperature above 30".
	notifications := make(chan string, 16)
	_, err = c.Register(`
subscribe r to Readings;
int count;
behavior {
	if (r.celsius > 30.0) {
		count += 1;
		send(r.sensor, r.celsius, count);
	}
}
`, func(vals []types.Value) error {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		notifications <- strings.Join(parts, " ")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// A Watch tap observes the raw topic asynchronously: the commit path
	// only enqueues into the tap's bounded inbox, and a dispatcher
	// goroutine runs this callback in commit order — a slow tap can shed
	// load (DropOldest) instead of ever stalling the Readings stream.
	var tapped atomic.Int64
	tapID, err := c.WatchWith("Readings", func(*types.Event) {
		tapped.Add(1)
	}, cache.WatchOpts{Queue: 64, Policy: pubsub.DropOldest})
	if err != nil {
		log.Fatal(err)
	}

	// Populate the stream.
	data := []struct {
		sensor string
		temp   float64
	}{
		{"kitchen", 21.5}, {"attic", 33.0}, {"kitchen", 22.1},
		{"server-room", 41.7}, {"attic", 29.9},
	}
	for _, d := range data {
		if err := c.Insert("Readings", types.Str(d.sensor), types.Real(d.temp)); err != nil {
			log.Fatal(err)
		}
	}

	// The pub/sub face: notifications pushed by the automaton.
	fmt.Println("notifications:")
	for i := 0; i < 2; i++ {
		select {
		case n := <-notifications:
			fmt.Println("  over threshold:", n)
		case <-time.After(5 * time.Second):
			log.Fatal("timed out waiting for notifications")
		}
	}

	// The stream-database face: the same events answer ad hoc queries.
	res, err := c.Exec(`select sensor, max(celsius) as hottest from Readings group by sensor order by hottest desc`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hottest reading per sensor:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %s\n", row[0], row[1])
	}

	// Detach the tap: after Unsubscribe returns its callback never runs
	// again, even if events were still queued.
	c.Unsubscribe(tapID)
	fmt.Printf("tap observed %d of %d readings\n", tapped.Load(), len(data))
}
