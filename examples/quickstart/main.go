// Quickstart: one engine, one stream table, one automaton — embedded or
// remote with the same program text.
//
// The example creates a Readings stream, registers an automaton that
// watches for readings over a threshold, inserts a handful of tuples, and
// prints both the automaton's notifications and an ad hoc SQL view of the
// same stream — the two faces of the unified system. Everything goes
// through the location-transparent unicache.Engine façade: run it
// in-process (the default) or against a running cached by swapping one
// constructor.
//
// Run with: go run ./examples/quickstart
// Or:       cached -addr :7654 &  go run ./examples/quickstart -remote 127.0.0.1:7654
// Or, against a partitioned cluster (comma-separated node list):
//
//	go run ./examples/quickstart -remote 127.0.0.1:7654,127.0.0.1:7655,127.0.0.1:7656
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"unicache"
	"unicache/internal/types"
)

func main() {
	remote := flag.String("remote", "", "cached address or comma-separated cluster list; empty runs embedded")
	flag.Parse()

	// The one line that decides where the engine lives: in this process,
	// behind one cached server, or spread across a cluster of them. Every
	// call below is identical in all three cases.
	var eng unicache.Engine
	if *remote != "" {
		r, err := unicache.Dial(*remote)
		if err != nil {
			log.Fatal(err)
		}
		eng = r
	} else {
		e, err := unicache.NewEmbedded(unicache.Config{})
		if err != nil {
			log.Fatal(err)
		}
		eng = e
	}
	defer func() { _ = eng.Close() }()

	// Tables are topics: every insert is published to subscribed automata.
	if _, err := eng.Exec(`create table Readings (sensor varchar, celsius real)`); err != nil {
		log.Fatal(err)
	}

	// The automaton detects the complex event "temperature above 30"; its
	// send() notifications surface on the handle's Events channel.
	hot, err := eng.Register(`
subscribe r to Readings;
int count;
behavior {
	if (r.celsius > 30.0) {
		count += 1;
		send(r.sensor, r.celsius, count);
	}
}
`)
	if err != nil {
		log.Fatal(err)
	}

	// A Watch tap observes the raw topic asynchronously: the commit path
	// only enqueues into the tap's bounded inbox, and the events reach
	// this callback in commit order — a slow tap can shed load
	// (DropOldest) instead of ever stalling the Readings stream.
	var tapped atomic.Int64
	tap, err := eng.Watch("Readings", func(*unicache.Event) {
		tapped.Add(1)
	}, unicache.WatchQueue(64), unicache.WatchPolicy(unicache.DropOldest))
	if err != nil {
		log.Fatal(err)
	}

	// Populate the stream.
	data := []struct {
		sensor string
		temp   float64
	}{
		{"kitchen", 21.5}, {"attic", 33.0}, {"kitchen", 22.1},
		{"server-room", 41.7}, {"attic", 29.9},
	}
	for _, d := range data {
		if err := eng.Insert("Readings", types.Str(d.sensor), types.Real(d.temp)); err != nil {
			log.Fatal(err)
		}
	}

	// The pub/sub face: notifications pushed by the automaton.
	fmt.Println("notifications:")
	for i := 0; i < 2; i++ {
		select {
		case vals := <-hot.Events():
			parts := make([]string, len(vals))
			for j, v := range vals {
				parts[j] = v.String()
			}
			fmt.Println("  over threshold:", strings.Join(parts, " "))
		case <-time.After(5 * time.Second):
			log.Fatal("timed out waiting for notifications")
		}
	}

	// The stream-database face: the same events answer ad hoc queries.
	res, err := eng.Exec(`select sensor, max(celsius) as hottest from Readings group by sensor order by hottest desc`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hottest reading per sensor:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %s\n", row[0], row[1])
	}

	// Detach the tap: after Close returns its callback never runs again,
	// even if events were still queued.
	_ = tap.Close()
	fmt.Printf("tap observed %d of %d readings\n", tapped.Load(), len(data))
}
