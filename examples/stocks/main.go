// Stock trend analysis: the paper's §6.5 comparison in miniature.
//
// The example runs the three Cayuga queries — Q1 passthrough publish, Q2
// double-top (M-shape) detection, Q3 increasing-price runs — on a live
// cache with GAPL automata, then replays the identical trace through the
// reimplemented Cayuga NFA engine and prints both engines' match counts
// and timings.
//
// Run with: go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"time"

	"unicache/internal/automaton"
	"unicache/internal/cache"
	"unicache/internal/cayuga"
	"unicache/internal/experiments"
	"unicache/internal/types"
	"unicache/internal/workload"
)

func main() {
	trace := workload.StockTrace(workload.StockConfig{
		Seed: 20120601, Events: 30_000, Symbols: 25,
		DoubleTops: 60, RunLength: 7, Runs: 120,
	})

	// --- the Cache: a live cache instance with the three GAPL programs ---
	// (ring capacity sized to hold the whole republished stream so the
	// count(*) below reflects every Q1 event)
	c, err := cache.New(cache.Config{TimerPeriod: -1, EphemeralCapacity: 40_000})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, stmt := range []string{
		`create table Stocks (name varchar, price real, volume integer)`,
		`create table T (name varchar, price real, volume integer)`,
		`create table Runs (name varchar, len integer)`,
	} {
		if _, err := c.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	var doubleTops, runs int
	countTops := func(vals []types.Value) error { doubleTops++; return nil }
	countRuns := func(vals []types.Value) error { runs++; return nil }
	if _, err := c.Register(experiments.ProgQ1, automaton.DiscardSink); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Register(experiments.ProgQ2, countTops); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Register(experiments.ProgQ3Detector(3), automaton.DiscardSink); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Register(experiments.ProgQ3Reporter, countRuns); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	for _, ev := range trace {
		err := c.Insert("Stocks", types.Str(ev.Name), types.Real(ev.Price), types.Int(ev.Volume))
		if err != nil {
			log.Fatal(err)
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("automata did not quiesce")
	}
	cacheElapsed := time.Since(start)

	res, err := c.Exec(`select count(*) from T`)
	if err != nil {
		log.Fatal(err)
	}
	passthrough := res.Rows[0][0].String()

	fmt.Printf("Cache (live, %d events): %.3fs\n", len(trace), cacheElapsed.Seconds())
	fmt.Printf("  Q1 republished %s events into stream T\n", passthrough)
	fmt.Printf("  Q2 detected %d double-top (M-shaped) patterns\n", doubleTops)
	fmt.Printf("  Q3 reported %d increasing-price runs (length >= 3)\n", runs)

	// --- Cayuga: the same queries through the NFA engine ---
	eng := cayuga.NewEngine()
	for _, q := range []*cayuga.Query{
		cayuga.PassthroughQuery("Stocks", "T"),
		cayuga.DoubleTopQuery("Stocks", "M"),
		cayuga.RisingRunQuery("Stocks", "Runs", 3),
	} {
		if err := eng.Register(q); err != nil {
			log.Fatal(err)
		}
	}
	start = time.Now()
	for _, ev := range trace {
		eng.Process(cayuga.StockEvent(ev))
	}
	cayugaElapsed := time.Since(start)
	st := eng.Stats()
	fmt.Printf("Cayuga (NFA engine): %.3fs\n", cayugaElapsed.Seconds())
	fmt.Printf("  T=%d matches, M=%d matches, Runs=%d matches\n",
		len(eng.Stream("T")), len(eng.Stream("M")), len(eng.Stream("Runs")))
	fmt.Printf("  engine work: %d instances spawned, %d transitions, %d materialised events\n",
		st.Spawned, st.Transitions, st.Materialised)
}
