// Stock trend analysis: the paper's §6.5 comparison in miniature —
// embedded or remote with the same program text.
//
// The example runs the three Cayuga queries — Q1 passthrough publish, Q2
// double-top (M-shape) detection, Q3 increasing-price runs — on a live
// engine with GAPL automata (through the unicache.Engine façade, so the
// same program drives an in-process cache or a cached server), then
// replays the identical trace through the reimplemented Cayuga NFA engine
// and prints both engines' match counts and timings.
//
// Run with: go run ./examples/stocks
// Or:       cached -addr :7654 &  go run ./examples/stocks -remote 127.0.0.1:7654
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"unicache"
	"unicache/internal/cayuga"
	"unicache/internal/experiments"
	"unicache/internal/types"
	"unicache/internal/workload"
)

// count drains an automaton's Events channel into an atomic counter.
func count(a unicache.Automaton) *atomic.Int64 {
	var n atomic.Int64
	go func() {
		for range a.Events() {
			n.Add(1)
		}
	}()
	return &n
}

func main() {
	remote := flag.String("remote", "", "cached address or comma-separated cluster list; empty runs embedded")
	flag.Parse()

	trace := workload.StockTrace(workload.StockConfig{
		Seed: 20120601, Events: 30_000, Symbols: 25,
		DoubleTops: 60, RunLength: 7, Runs: 120,
	})

	// --- the Cache: a live engine with the three GAPL programs ---
	// (ring capacity sized to hold the whole republished stream so the
	// count(*) below reflects every Q1 event; for -remote, size the
	// server's ring with `cached -ring 40000`)
	var eng unicache.Engine
	if *remote != "" {
		r, err := unicache.Dial(*remote)
		if err != nil {
			log.Fatal(err)
		}
		eng = r
	} else {
		e, err := unicache.NewEmbedded(unicache.Config{TimerPeriod: -1, EphemeralCapacity: 40_000})
		if err != nil {
			log.Fatal(err)
		}
		eng = e
	}
	defer func() { _ = eng.Close() }()
	for _, stmt := range []string{
		`create table Stocks (name varchar, price real, volume integer)`,
		`create table T (name varchar, price real, volume integer)`,
		`create table Runs (name varchar, len integer)`,
	} {
		if _, err := eng.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	// Q1 and the Q3 detector only publish back into the cache; their
	// (empty) Events channels can be ignored — an undrained handle sheds,
	// it never stalls the automaton.
	if _, err := eng.Register(experiments.ProgQ1); err != nil {
		log.Fatal(err)
	}
	q2, err := eng.Register(experiments.ProgQ2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Register(experiments.ProgQ3Detector(3)); err != nil {
		log.Fatal(err)
	}
	q3, err := eng.Register(experiments.ProgQ3Reporter)
	if err != nil {
		log.Fatal(err)
	}
	doubleTops, runs := count(q2), count(q3)

	start := time.Now()
	for _, ev := range trace {
		err := eng.Insert("Stocks", types.Str(ev.Name), types.Real(ev.Price), types.Int(ev.Volume))
		if err != nil {
			log.Fatal(err)
		}
	}
	if !unicache.WaitIdle(eng, time.Minute) {
		log.Fatal("automata did not quiesce")
	}
	cacheElapsed := time.Since(start)
	// Quiescent automata can still have their last send()s in flight
	// (for -remote: on the push path); let the counters settle.
	settle := func(n *atomic.Int64) {
		last, stable := int64(-1), 0
		for stable < 5 {
			if v := n.Load(); v == last {
				stable++
			} else {
				last, stable = v, 0
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	settle(doubleTops)
	settle(runs)

	res, err := eng.Exec(`select count(*) from T`)
	if err != nil {
		log.Fatal(err)
	}
	passthrough := res.Rows[0][0].String()

	fmt.Printf("Cache (live, %d events): %.3fs\n", len(trace), cacheElapsed.Seconds())
	fmt.Printf("  Q1 republished %s events into stream T\n", passthrough)
	fmt.Printf("  Q2 detected %d double-top (M-shaped) patterns\n", doubleTops.Load())
	fmt.Printf("  Q3 reported %d increasing-price runs (length >= 3)\n", runs.Load())

	// --- Cayuga: the same queries through the NFA engine (always local:
	// it is a library replay, not a cache deployment) ---
	eng2 := cayuga.NewEngine()
	for _, q := range []*cayuga.Query{
		cayuga.PassthroughQuery("Stocks", "T"),
		cayuga.DoubleTopQuery("Stocks", "M"),
		cayuga.RisingRunQuery("Stocks", "Runs", 3),
	} {
		if err := eng2.Register(q); err != nil {
			log.Fatal(err)
		}
	}
	start = time.Now()
	for _, ev := range trace {
		eng2.Process(cayuga.StockEvent(ev))
	}
	cayugaElapsed := time.Since(start)
	st := eng2.Stats()
	fmt.Printf("Cayuga (NFA engine): %.3fs\n", cayugaElapsed.Seconds())
	fmt.Printf("  T=%d matches, M=%d matches, Runs=%d matches\n",
		len(eng2.Stream("T")), len(eng2.Stream("M")), len(eng2.Stream("Runs")))
	fmt.Printf("  engine work: %d instances spawned, %d transitions, %d materialised events\n",
		st.Spawned, st.Transitions, st.Materialised)
}
