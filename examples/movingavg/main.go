// Windowed moving average with batch activation (PR 4, docs/GAPL.md).
//
// Two automata compute the same 20-trade moving average over a synthetic
// stock stream. One is written per-event (append + winAvg once per trade,
// the paper's activation model); the other is batchable (appendRun +
// winAvg once per delivered run) — the compiler classifies each, and the
// runtime activates the batchable one once per drained run. The stream is
// committed in batches, so the batchable automaton sees long runs and
// activates orders of magnitude less often while maintaining the same
// window contents.
//
// Run with: go run ./examples/movingavg
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"unicache/internal/cache"
	"unicache/internal/types"
	"unicache/internal/workload"
)

const progPerEvent = `
subscribe s to Stocks;
window w;
initialization { w = Window(real, ROWS, 20); }
behavior {
	append(w, s.price);
	if (winSize(w) >= 20) {
		send(winAvg(w), winMin(w), winMax(w));
	}
}
`

const progBatch = `
subscribe s to Stocks;
window w;
initialization { w = Window(real, ROWS, 20); }
behavior {
	appendRun(w, s.price);
	if (winSize(w) >= 20) {
		send(winAvg(w), winMin(w), winMax(w));
	}
}
`

func main() {
	trace := workload.StockTrace(workload.StockConfig{
		Seed: 7, Events: 50_000, Symbols: 10, RunLength: 5, Runs: 50,
	})

	c, err := cache.New(cache.Config{TimerPeriod: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create table Stocks (name varchar, price real, volume integer)`); err != nil {
		log.Fatal(err)
	}

	type watcher struct {
		activations atomic.Int64
		last        atomic.Value // []types.Value of the latest send
	}
	sink := func(w *watcher) func([]types.Value) error {
		return func(vals []types.Value) error {
			w.activations.Add(1)
			w.last.Store(append([]types.Value(nil), vals...))
			return nil
		}
	}
	var perEvent, batched watcher
	ape, err := c.Register(progPerEvent, sink(&perEvent))
	if err != nil {
		log.Fatal(err)
	}
	ab, err := c.Register(progBatch, sink(&batched))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiler classification: per-event program batchable=%v, appendRun program batchable=%v\n\n",
		ape.Batchable(), ab.Batchable())

	// Commit the trace in batches of 256, the shape a batching ingest
	// client (rpc.Batcher) produces; each batch reaches the automata as
	// one run.
	const batch = 256
	start := time.Now()
	rows := make([][]types.Value, 0, batch)
	for i, ev := range trace {
		rows = append(rows, []types.Value{
			types.Str(ev.Name), types.Real(ev.Price), types.Int(ev.Volume)})
		if len(rows) == batch || i == len(trace)-1 {
			if err := c.CommitBatch("Stocks", rows); err != nil {
				log.Fatal(err)
			}
			rows = rows[:0]
		}
	}
	if !c.Registry().WaitIdle(time.Minute) {
		log.Fatal("automata did not quiesce")
	}
	elapsed := time.Since(start)

	report := func(name string, w *watcher, processed uint64) {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  %d events processed, %d activations with a full window\n",
			processed, w.activations.Load())
		if vals, ok := w.last.Load().([]types.Value); ok {
			avg, _ := vals[0].NumAsReal()
			min, _ := vals[1].NumAsReal()
			max, _ := vals[2].NumAsReal()
			fmt.Printf("  final 20-trade window: avg %.2f, min %.2f, max %.2f\n", avg, min, max)
		}
	}
	fmt.Printf("streamed %d trades in %.3fs (batch %d)\n\n", len(trace), elapsed.Seconds(), batch)
	report("per-event automaton (append)", &perEvent, ape.Processed())
	report("batchable automaton (appendRun)", &batched, ab.Processed())
	fmt.Printf("\nSame window contents, same final aggregates — the batchable\n" +
		"automaton just paid interpreter dispatch, eviction and the aggregate\n" +
		"sweep once per run instead of once per trade (see docs/GAPL.md).\n")
}
