// Windowed moving average with batch activation (PR 4, docs/GAPL.md) —
// embedded or remote with the same program text.
//
// Two automata compute the same 20-trade moving average over a synthetic
// stock stream. One is written per-event (append + winAvg once per trade,
// the paper's activation model); the other is batchable (appendRun +
// winAvg once per delivered run) — the compiler classifies each, and the
// runtime activates the batchable one once per drained run. The stream is
// committed in batches, so the batchable automaton sees long runs and
// activates orders of magnitude less often while maintaining the same
// window contents. Everything goes through the unicache.Engine façade,
// so the identical program drives an in-process cache or a cached server.
//
// Run with: go run ./examples/movingavg
// Or:       cached -addr :7654 &  go run ./examples/movingavg -remote 127.0.0.1:7654
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"unicache"
	"unicache/internal/types"
	"unicache/internal/workload"
)

const progPerEvent = `
subscribe s to Stocks;
window w;
initialization { w = Window(real, ROWS, 20); }
behavior {
	append(w, s.price);
	if (winSize(w) >= 20) {
		send(winAvg(w), winMin(w), winMax(w));
	}
}
`

const progBatch = `
subscribe s to Stocks;
window w;
initialization { w = Window(real, ROWS, 20); }
behavior {
	appendRun(w, s.price);
	if (winSize(w) >= 20) {
		send(winAvg(w), winMin(w), winMax(w));
	}
}
`

// watcher drains one automaton's Events channel, counting activations
// (send() calls with a full window) and keeping the latest aggregates.
type watcher struct {
	mu          sync.Mutex
	activations int64
	last        []types.Value
	done        chan struct{}
}

func drain(a unicache.Automaton) *watcher {
	w := &watcher{done: make(chan struct{})}
	go func() {
		defer close(w.done)
		for vals := range a.Events() {
			w.mu.Lock()
			w.activations++
			w.last = vals
			w.mu.Unlock()
		}
	}()
	return w
}

func main() {
	remote := flag.String("remote", "", "cached address or comma-separated cluster list; empty runs embedded")
	flag.Parse()

	trace := workload.StockTrace(workload.StockConfig{
		Seed: 7, Events: 50_000, Symbols: 10, RunLength: 5, Runs: 50,
	})

	var eng unicache.Engine
	if *remote != "" {
		r, err := unicache.Dial(*remote)
		if err != nil {
			log.Fatal(err)
		}
		eng = r
	} else {
		e, err := unicache.NewEmbedded(unicache.Config{TimerPeriod: -1})
		if err != nil {
			log.Fatal(err)
		}
		eng = e
	}
	defer func() { _ = eng.Close() }()
	if _, err := eng.Exec(`create table Stocks (name varchar, price real, volume integer)`); err != nil {
		log.Fatal(err)
	}

	// A large event buffer so the activation counts are exact even if the
	// drain goroutines briefly fall behind the send() rate.
	ape, err := eng.Register(progPerEvent, unicache.EventBuffer(60_000))
	if err != nil {
		log.Fatal(err)
	}
	ab, err := eng.Register(progBatch, unicache.EventBuffer(60_000))
	if err != nil {
		log.Fatal(err)
	}
	perEvent, batched := drain(ape), drain(ab)

	// Commit the trace in batches of 256, the shape a batching ingest
	// client (rpc.Batcher) produces; each batch reaches the automata as
	// one run.
	const batch = 256
	start := time.Now()
	rows := make([][]types.Value, 0, batch)
	for i, ev := range trace {
		rows = append(rows, []types.Value{
			types.Str(ev.Name), types.Real(ev.Price), types.Int(ev.Volume)})
		if len(rows) == batch || i == len(trace)-1 {
			if err := eng.InsertBatch("Stocks", rows); err != nil {
				log.Fatal(err)
			}
			rows = rows[:0]
		}
	}
	if !unicache.WaitIdle(eng, time.Minute) {
		log.Fatal("automata did not quiesce")
	}
	elapsed := time.Since(start)
	// The automata are idle, but their last send() notifications may still
	// be in flight (for -remote: queued on the push path); wait for the
	// activation counts to stop moving before reporting them.
	settle := func(w *watcher) {
		last, stable := int64(-1), 0
		for stable < 5 {
			w.mu.Lock()
			n := w.activations
			w.mu.Unlock()
			if n == last {
				stable++
			} else {
				last, stable = n, 0
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	settle(perEvent)
	settle(batched)

	report := func(name string, w *watcher, a unicache.Automaton) {
		st, err := a.Stats()
		if err != nil {
			log.Fatal(err)
		}
		w.mu.Lock()
		defer w.mu.Unlock()
		fmt.Printf("%s:\n", name)
		fmt.Printf("  %d events processed, %d activations with a full window\n",
			st.Processed, w.activations)
		if len(w.last) == 3 {
			avg, _ := w.last[0].NumAsReal()
			min, _ := w.last[1].NumAsReal()
			max, _ := w.last[2].NumAsReal()
			fmt.Printf("  final 20-trade window: avg %.2f, min %.2f, max %.2f\n", avg, min, max)
		}
	}
	fmt.Printf("streamed %d trades in %.3fs (batch %d)\n\n", len(trace), elapsed.Seconds(), batch)
	report("per-event automaton (append)", perEvent, ape)
	report("batchable automaton (appendRun)", batched, ab)
	fmt.Printf("\nSame window contents, same final aggregates — the batchable\n" +
		"automaton just paid interpreter dispatch, eviction and the aggregate\n" +
		"sweep once per run instead of once per trade (see docs/GAPL.md).\n")
}
